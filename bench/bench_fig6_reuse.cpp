// Fig 6 reproduction: per-partition data reuse and multi-stage buffer
// shapes on a 256x256 tomogram/sinogram pair.
//
// A 64x64-cell partition of one domain gathers from a compact footprint in
// the other domain; the average reuse (accesses per distinct input element)
// is what the input buffer converts from DRAM traffic into L1 hits, and the
// footprint size divided by the buffer capacity gives the stage count.
#include <cstdio>
#include <unordered_map>

#include "bench_util.hpp"
#include "common/grid.hpp"
#include "io/table.hpp"
#include "sparse/transpose.hpp"

namespace {

struct ReuseStats {
  std::int64_t accesses = 0;
  std::int64_t distinct = 0;
  double average_reuse() const {
    return distinct > 0 ? static_cast<double>(accesses) / distinct : 0.0;
  }
};

ReuseStats partition_reuse(const memxct::sparse::CsrMatrix& m,
                           memxct::idx_t row_begin, memxct::idx_t row_end) {
  std::unordered_map<memxct::idx_t, memxct::idx_t> counts;
  ReuseStats stats;
  for (memxct::idx_t r = row_begin; r < row_end; ++r)
    for (memxct::nnz_t k = m.displ[r]; k < m.displ[r + 1]; ++k) {
      ++counts[m.ind[k]];
      ++stats.accesses;
    }
  stats.distinct = static_cast<std::int64_t>(counts.size());
  return stats;
}

}  // namespace

int main() {
  using namespace memxct;
  const idx_t n = 256 / bench::env_scale();
  const auto g = geometry::make_geometry(n, n);
  const hilbert::Ordering sino(g.sinogram_extent(),
                               hilbert::CurveKind::Hilbert, 64);
  const hilbert::Ordering tomo(g.tomogram_extent(),
                               hilbert::CurveKind::Hilbert, 64);
  const auto a = geometry::build_projection_matrix(g, sino, tomo);
  const auto at = sparse::transpose(a);

  // One 64x64 tile of each domain (the first tile is a full square tile).
  const idx_t part = std::min<idx_t>(64 * 64, n * n);
  const auto fwd = partition_reuse(a, 0, part);   // sinogram partition
  const auto bwd = partition_reuse(at, 0, part);  // tomogram partition

  const idx_t buffer_elems = 32 * 1024 / sizeof(real);  // 32 KB buffer
  io::TablePrinter table("Fig 6: partition data reuse and buffer stages");
  table.header({"partition", "reads from", "accesses", "distinct",
                "avg reuse", "stages (32KB buf)"});
  table.row({"sinogram 64x64", "tomogram domain", std::to_string(fwd.accesses),
             std::to_string(fwd.distinct),
             io::TablePrinter::num(fwd.average_reuse(), 2),
             std::to_string(ceil_div<idx_t>(
                 static_cast<idx_t>(fwd.distinct), buffer_elems))});
  table.row({"tomogram 64x64", "sinogram domain", std::to_string(bwd.accesses),
             std::to_string(bwd.distinct),
             io::TablePrinter::num(bwd.average_reuse(), 2),
             std::to_string(ceil_div<idx_t>(
                 static_cast<idx_t>(bwd.distinct), buffer_elems))});
  table.print();
  table.write_csv("fig6_reuse.csv");
  std::printf(
      "\nPaper reference: average reuse 46.63 (tomogram) / 64.73 (sinogram);\n"
      "4 stages for projection and 3 for backprojection with a 32 KB "
      "buffer.\n");
  return 0;
}
