// Ablation: the ordering choice (Section 3.2.3's Hilbert-vs-Morton
// argument, plus the row-major baseline).
//
// Three effects are isolated on the same dataset:
//   1. curve connectivity (fraction of adjacent consecutive cells) — what
//      makes partitions spatially connected;
//   2. buffered-kernel structure: staging volume and stage count — compact
//      footprints are what multi-stage buffering feeds on;
//   3. end kernel throughput for baseline CSR and buffered SpMV.
#include <cstdio>

#include "bench_util.hpp"
#include "hilbert/locality.hpp"
#include "io/table.hpp"
#include "sparse/buffered.hpp"
#include "sparse/spmv.hpp"

int main() {
  using namespace memxct;
  const auto spec = bench::spec_paper_over("ADS2", 2);
  std::printf("ADS2 analog: %d x %d\n", spec.angles, spec.channels);
  const auto g = spec.geometry();

  io::TablePrinter table("Ablation: ordering choice (Fig 4 / Section 3.2.3)");
  table.header({"ordering", "connectivity", "mean step", "staged words",
                "stages", "CSR GFLOPS", "buffered GFLOPS"});

  for (const auto kind :
       {hilbert::CurveKind::RowMajor, hilbert::CurveKind::Hilbert,
        hilbert::CurveKind::Morton}) {
    const hilbert::Ordering tomo(g.tomogram_extent(), kind);
    const auto a = bench::build_matrix(spec, kind);
    const auto bm = sparse::build_buffered(a, {128, 4096});

    AlignedVector<real> x(static_cast<std::size_t>(a.num_cols), 1.0f);
    AlignedVector<real> y(static_cast<std::size_t>(a.num_rows));
    const double t_csr =
        bench::time_kernel([&] { sparse::spmv_csr(a, x, y); });
    const double t_buf =
        bench::time_kernel([&] { sparse::spmv_buffered(bm, x, y); });

    table.row({to_string(kind),
               io::TablePrinter::num(100.0 * adjacency_fraction(tomo), 1) +
                   "%",
               io::TablePrinter::num(mean_step_length(tomo), 2),
               std::to_string(bm.total_staged()),
               std::to_string(bm.num_stages()),
               io::TablePrinter::num(sparse::csr_work(a).gflops(t_csr), 2),
               io::TablePrinter::num(
                   sparse::buffered_work(bm).gflops(t_buf), 2)});
  }
  table.print();
  table.write_csv("ablation_ordering.csv");
  std::printf(
      "\nExpected: Hilbert has ~100%% connectivity and the smallest staging\n"
      "volume; Morton's jumps fragment partition footprints (more staged\n"
      "words for the same data); row-major needs the most staging of all\n"
      "because a partition's rays spread across the whole opposite "
      "domain.\n");
  return 0;
}
