// GPU-layout evidence for Section 3.1.4 and Section 3.3: memory
// transaction counts and shared-memory bank behaviour of the MemXCT GPU
// kernels, computed exactly from the data structures by the SIMT model.
//
// Backs two paper claims with numbers this host cannot time directly:
//   1. "Transposed ELL data structures provide coalesced memory access
//      through consecutive threads accessing consecutive memory" — compare
//      transactions per warp step, column-major vs row-major lane order;
//   2. the input buffer "allocated through CUDA shared memory" is usable
//      without serialization — bank conflict degrees of the compute phase.
#include <cstdio>

#include "bench_util.hpp"
#include "io/table.hpp"
#include "simt/kernel_analysis.hpp"
#include "sparse/buffered.hpp"
#include "sparse/ell.hpp"

int main() {
  using namespace memxct;
  const auto spec = bench::spec_paper_over("ADS2", 2);
  std::printf("ADS2 analog: %d x %d\n", spec.angles, spec.channels);

  io::TablePrinter ell_table(
      "ELL SpMV global-memory transactions per warp step (Section 3.1.4)");
  ell_table.header({"ordering", "lane order", "stream (ind+val)/2",
                    "x gather"});
  for (const auto kind :
       {hilbert::CurveKind::RowMajor, hilbert::CurveKind::Hilbert}) {
    const auto a = bench::build_matrix(spec, kind);
    const auto ell = sparse::to_ell_block(a, 64);
    for (const auto lanes :
         {simt::EllLaneOrder::ColumnMajor, simt::EllLaneOrder::RowMajor}) {
      const auto report = simt::analyze_ell_spmv(ell, lanes, {}, 64);
      ell_table.row(
          {to_string(kind),
           lanes == simt::EllLaneOrder::ColumnMajor ? "column-major (MemXCT)"
                                                    : "row-major (naive)",
           io::TablePrinter::num(report.stream_per_step(), 2),
           io::TablePrinter::num(report.gather_per_step(), 2)});
    }
  }
  ell_table.print();
  ell_table.write_csv("gpu_coalescing_ell.csv");

  io::TablePrinter buf_table(
      "Buffered kernel: staging coalescing + shared-memory banks "
      "(Section 3.3)");
  buf_table.header({"ordering", "staging txn/step", "conflict steps",
                    "mean degree", "max degree"});
  for (const auto kind :
       {hilbert::CurveKind::RowMajor, hilbert::CurveKind::Hilbert}) {
    const auto a = bench::build_matrix(spec, kind);
    const auto bm = sparse::build_buffered(a, {512, 12288});  // 48 KB smem
    const auto report = simt::analyze_buffered_spmv(bm, {}, 32);
    buf_table.row(
        {to_string(kind), io::TablePrinter::num(report.staging_per_step(), 2),
         io::TablePrinter::num(
             100.0 * static_cast<double>(report.bank_conflict_steps) /
                 std::max<std::int64_t>(1, report.compute_warp_steps),
             1) + "%",
         io::TablePrinter::num(report.mean_conflict_degree, 2),
         io::TablePrinter::num(report.max_conflict_degree, 0)});
  }
  buf_table.print();
  buf_table.write_csv("gpu_coalescing_buffered.csv");
  std::printf(
      "\nExpected: column-major lane order ~1 stream transaction/step vs 32\n"
      "for row-major (the Section 3.1.4 coalescing claim); Hilbert ordering\n"
      "cuts the x-gather transactions severalfold. Staging is coalesced\n"
      "under either ordering (map holds sorted distinct columns), but\n"
      "Hilbert's compact footprints lower the shared-memory conflict\n"
      "degree of the compute phase.\n");
  return 0;
}
