// Roofline placement of the MemXCT kernels on the Table 2 machines.
//
// SpMV arithmetic intensity is tiny (2 FLOPs per 6-8 regular bytes plus
// the gather), so every kernel sits deep in the bandwidth-bound region of
// any roofline — the quantitative backbone of the paper's "performance
// bottleneck moves from computation to memory" argument (Fig 3). This
// bench computes each kernel's intensity from its exact byte counts,
// derives the attainable GFLOPS ceiling per machine, and reports the
// measured host fraction of its own ceiling. The compressed rows carry
// MEASURED per-FMA byte widths (16-bit values + delta/varint indices), so
// their higher intensity — and the B/FMA reduction vs fp32 — comes from
// the actual encoded streams, not a model constant.
//
//   bench_roofline [--json <path>]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "io/table.hpp"
#include "perf/machine_model.hpp"
#include "sparse/buffered.hpp"
#include "sparse/compressed.hpp"
#include "sparse/ell.hpp"
#include "sparse/spmv.hpp"

int main(int argc, char** argv) {
  using namespace memxct;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      return 1;
    }
  }

  const auto spec = bench::spec_paper_over("ADS2", 2);
  std::printf("ADS2 analog: %d x %d\n", spec.angles, spec.channels);
  const auto a = bench::build_matrix(spec, hilbert::CurveKind::Hilbert);
  const auto bm = sparse::build_buffered(a, {128, 4096});
  const auto ell = sparse::to_ell_block(a, 64);
  const auto ccsr =
      sparse::compress_csr(a, sparse::kCsrPartsize, sparse::ValueStorage::Bf16);
  const auto cbuf = sparse::compress_buffered(bm, sparse::ValueStorage::Bf16);

  AlignedVector<real> x(static_cast<std::size_t>(a.num_cols), 1.0f);
  AlignedVector<real> y(static_cast<std::size_t>(a.num_rows));

  struct Kernel {
    const char* name;
    perf::KernelWork work;
    double measured_s;
  };
  const Kernel kernels[] = {
      {"baseline CSR", sparse::csr_work(a),
       bench::time_kernel([&] { sparse::spmv_csr(a, x, y); })},
      {"block-ELL", sparse::ell_work(ell),
       bench::time_kernel([&] { sparse::spmv_ell(ell, x, y); })},
      {"multi-stage buffered", sparse::buffered_work(bm),
       bench::time_kernel([&] { sparse::spmv_buffered(bm, x, y); })},
      {"compressed CSR bf16", sparse::ccsr_work(ccsr),
       bench::time_kernel([&] { sparse::spmv_ccsr(ccsr, x, y); })},
      {"compressed buffered bf16", sparse::cbuffered_work(cbuf),
       bench::time_kernel([&] { sparse::spmv_cbuffered(cbuf, x, y); })},
  };

  io::TablePrinter intensity("Kernel arithmetic intensity (FLOP/byte)");
  intensity.header({"kernel", "FLOPs", "regular bytes", "B/FMA", "intensity",
                    "host GFLOPS", "host GB/s"});
  for (const auto& k : kernels)
    intensity.row(
        {k.name, io::TablePrinter::num(k.work.flops() * 1e-9, 3) + " G",
         io::TablePrinter::bytes(k.work.regular_bytes()),
         io::TablePrinter::num(k.work.bytes_per_fma(), 2),
         io::TablePrinter::num(k.work.flops() / k.work.regular_bytes(), 3),
         io::TablePrinter::num(k.work.gflops(k.measured_s), 2),
         io::TablePrinter::num(k.work.bandwidth_gbs(k.measured_s), 2)});
  intensity.print();

  // Bandwidth rooflines: attainable GFLOPS = intensity x memory bandwidth
  // (all kernels are far below any compute ceiling — KNL peaks at ~3 TF
  // single precision, V100 at ~15 TF; intensities of ~0.3 never reach it).
  io::TablePrinter roofline(
      "Bandwidth roofline: attainable GFLOPS per machine");
  roofline.header({"kernel", "Theta/KNL (400 GB/s)", "K20X (121.5)",
                   "K80 (204)", "P100 (720)", "V100 (900)"});
  for (const auto& k : kernels) {
    const double ai = k.work.flops() / k.work.regular_bytes();
    std::vector<std::string> row{k.name};
    for (const char* m : {"Theta", "BlueWaters", "Cooley", "Minsky", "DGX-1"})
      row.push_back(
          io::TablePrinter::num(ai * perf::machine(m).mem_bw_gbs, 1));
    roofline.row(std::move(row));
  }
  roofline.print();
  roofline.write_csv("roofline.csv");
  std::printf(
      "\nReading: the buffered kernel's higher intensity (6 B vs 8 B per\n"
      "FMA) raises its roofline 16-25%% over baseline (depending on the\n"
      "staging overhead) — Section 3.3.5 in roofline form; bf16 values +\n"
      "varint indices push the matrix stream below 4 B/FMA. All\n"
      "intensities are << 1 FLOP/byte: memory-bound everywhere, exactly\n"
      "the regime the memory-centric design targets.\n");

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_roofline: cannot open %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(out, "[\n");
    const std::size_t count = sizeof(kernels) / sizeof(kernels[0]);
    for (std::size_t i = 0; i < count; ++i) {
      const Kernel& k = kernels[i];
      std::fprintf(out,
                   "{\"kernel\": \"%s\", \"flops\": %.6g, "
                   "\"regular_bytes\": %.6g, \"matrix_bytes_per_fma\": %.6g, "
                   "\"intensity\": %.6g, \"host_gflops\": %.6g, "
                   "\"host_gbs\": %.6g}%s\n",
                   k.name, k.work.flops(),
                   static_cast<double>(k.work.regular_bytes()),
                   k.work.bytes_per_fma(),
                   k.work.flops() / k.work.regular_bytes(),
                   k.work.gflops(k.measured_s),
                   k.work.bandwidth_gbs(k.measured_s),
                   i + 1 < count ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
