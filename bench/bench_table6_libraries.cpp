// Table 6 reproduction: MemXCT kernels vs general-purpose library SpMV for
// ADS2.
//
// The "library" stand-ins are a general CSR kernel (MKL role, statically
// scheduled, no app-specific layout) and a matrix-level padded ELL kernel
// (cuSPARSE role), both fed the natural-order matrix. MemXCT rows show the
// paper's progression: tuned baseline on the natural matrix, pseudo-Hilbert
// ordering, then multi-stage buffering.
#include <cstdio>

#include "bench_util.hpp"
#include "io/table.hpp"
#include "sparse/buffered.hpp"
#include "sparse/ell.hpp"
#include "sparse/spmv.hpp"

int main() {
  using namespace memxct;
  const auto spec = bench::spec_paper_over("ADS2", 2);
  std::printf("ADS2 analog: %d x %d\n", spec.angles, spec.channels);

  const auto natural =
      bench::build_matrix(spec, hilbert::CurveKind::RowMajor);
  const auto ordered = bench::build_matrix(spec, hilbert::CurveKind::Hilbert);

  AlignedVector<real> x(static_cast<std::size_t>(natural.num_cols), 1.0f);
  AlignedVector<real> y(static_cast<std::size_t>(natural.num_rows));

  // CPU-side comparison (MKL role).
  const double t_library =
      bench::time_kernel([&] { sparse::spmv_library(natural, x, y); });
  const double t_baseline =
      bench::time_kernel([&] { sparse::spmv_csr(natural, x, y); });
  const double t_hilbert =
      bench::time_kernel([&] { sparse::spmv_csr(ordered, x, y); });
  const auto buffered = sparse::build_buffered(ordered, {128, 4096});
  const double t_buffered =
      bench::time_kernel([&] { sparse::spmv_buffered(buffered, x, y); });

  // GPU-layout comparison (cuSPARSE role): matrix-level vs partition-level
  // padded ELL on the same ordered matrix.
  const auto ell_matrix = sparse::to_ell_matrix(ordered);
  const auto ell_block = sparse::to_ell_block(ordered, 64);
  const double t_ell_matrix =
      bench::time_kernel([&] { sparse::spmv_ell(ell_matrix, x, y); });
  const double t_ell_block =
      bench::time_kernel([&] { sparse::spmv_ell(ell_block, x, y); });

  io::TablePrinter table("Table 6: comparison with library SpMV (ADS2)");
  table.header({"kernel", "time", "speedup vs library"});
  const auto emit = [&](const char* name, double t) {
    table.row({name, io::TablePrinter::time_s(t),
               io::TablePrinter::num(t_library / t, 2) + "x"});
  };
  emit("library CSR (MKL role)", t_library);
  emit("MemXCT baseline (natural order)", t_baseline);
  emit("+ pseudo-Hilbert ordering", t_hilbert);
  emit("+ multi-stage buffering", t_buffered);
  table.print();
  table.write_csv("table6_libraries.csv");

  io::TablePrinter gpu("Table 6 (GPU layout): ELL padding granularity");
  gpu.header({"layout", "padded nnz", "time", "speedup"});
  gpu.row({"matrix-level ELL (cuSPARSE role)",
           std::to_string(ell_matrix.padded_nnz()),
           io::TablePrinter::time_s(t_ell_matrix), "1x"});
  gpu.row({"partition-level ELL (MemXCT)",
           std::to_string(ell_block.padded_nnz()),
           io::TablePrinter::time_s(t_ell_block),
           io::TablePrinter::num(t_ell_matrix / t_ell_block, 2) + "x"});
  gpu.print();
  std::printf(
      "\nPaper reference (KNL column): baseline 1.42x, Hilbert 4.99x,\n"
      "buffered 6.55x over MKL.\n");
  return 0;
}
