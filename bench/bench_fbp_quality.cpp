// Motivation study (paper Section 1): analytic FBP vs iterative CG under
// noise and angular undersampling.
//
// "Analytical methods such as FBP are computationally efficient, but
// reconstruction quality is often poor when measurements are noisy or
// undersampled. Iterative methods ... can handle inherent noise." This
// bench quantifies that claim on the Shepp-Logan phantom: RMSE of FBP
// (three filters) vs 30-iteration CG across dose and angle sweeps.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/reconstructor.hpp"
#include "io/table.hpp"
#include "phantom/analytic.hpp"
#include "phantom/phantom.hpp"
#include "solve/fbp.hpp"

int main() {
  using namespace memxct;
  const idx_t n = 128 / bench::env_scale();
  const auto ellipses = phantom::shepp_logan_ellipses(n);
  const auto truth = phantom::render_analytic(n, ellipses);

  const auto run_case = [&](idx_t angles, double dose,
                            io::TablePrinter& table, const char* label,
                            double angle_span = 3.14159265358979323846) {
    const auto g =
        geometry::make_limited_angle_geometry(angles, n, angle_span);
    auto sinogram = phantom::analytic_sinogram(g, ellipses);
    if (dose > 0) {
      Rng rng(7);
      phantom::add_poisson_noise(sinogram, dose, rng);
    }
    std::vector<std::string> row{label};
    for (const auto filter : {solve::FbpFilter::Ramp,
                              solve::FbpFilter::SheppLogan,
                              solve::FbpFilter::Hann}) {
      const auto img = solve::fbp_reconstruct(g, sinogram, {filter});
      row.push_back(io::TablePrinter::num(phantom::rmse(img, truth), 4));
    }
    core::Config config;
    config.iterations = 30;
    const core::Reconstructor recon(g, config);
    row.push_back(io::TablePrinter::num(
        phantom::rmse(recon.reconstruct(sinogram).image, truth), 4));
    // Regularized CG: Eq. 1's R(x) = λ²||x||² with λ chosen from a small
    // sweep (the operating-point choice the paper makes via the L-curve).
    double best = 1e300;
    for (const double lambda : {0.0, 1.0, 4.0, 16.0}) {
      core::Config reg = config;
      reg.tikhonov_lambda = lambda;
      const core::Reconstructor r(g, reg);
      best = std::min(
          best, phantom::rmse(r.reconstruct(sinogram).image, truth));
    }
    row.push_back(io::TablePrinter::num(best, 4));
    table.row(std::move(row));
  };

  io::TablePrinter table("FBP vs CG: RMSE under noise and undersampling");
  table.header({"scenario", "FBP Ram-Lak", "FBP Shepp-Logan", "FBP Hann",
                "CG (30 it)", "CG+Tikhonov (best λ)"});
  const idx_t dense = n * 3 / 2;
  run_case(dense, 0.0, table, "dense angles, clean");
  run_case(dense, 1e5, table, "dense angles, 1e5 photons");
  run_case(dense, 1e3, table, "dense angles, 1e3 photons (low dose)");
  run_case(dense / 4, 0.0, table, "4x undersampled, clean");
  run_case(dense / 8, 1e5, table, "8x undersampled, 1e5 photons");
  run_case(dense * 2 / 3, 0.0, table, "limited angle (120 deg), clean",
           3.14159265358979323846 * 2.0 / 3.0);
  table.print();
  table.write_csv("fbp_quality.csv");
  std::printf(
      "\nExpected (the paper's Section 1 motivation): FBP and CG are\n"
      "comparable on dense clean data; as dose drops or angles thin out,\n"
      "FBP degrades sharply while CG (with its implicit early-termination\n"
      "regularization) degrades gracefully.\n");
  return 0;
}
