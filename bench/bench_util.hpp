// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench honors MEMXCT_BENCH_SCALE (integer >= 1): working dataset
// sizes are divided by an *additional* factor of that value, so the whole
// suite can be smoke-tested quickly (e.g. MEMXCT_BENCH_SCALE=4) or run at
// full working scale (unset / 1).
#pragma once

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/aligned.hpp"
#include "geometry/projector.hpp"
#include "hilbert/ordering.hpp"
#include "perf/counters.hpp"
#include "perf/timer.hpp"
#include "phantom/datasets.hpp"
#include "sparse/csr.hpp"

namespace memxct::bench {

/// Extra divisor from the environment (default 1).
inline idx_t env_scale() {
  const char* v = std::getenv("MEMXCT_BENCH_SCALE");
  if (v == nullptr) return 1;
  const int s = std::atoi(v);
  return s >= 1 ? static_cast<idx_t>(s) : 1;
}

/// Dataset spec at `divisor x env_scale()` below the registry's *working*
/// size (which is itself paper/4, or paper/16 for RDS2).
inline phantom::DatasetSpec spec_for(const std::string& name, idx_t divisor) {
  const auto& base = phantom::dataset(name);
  const idx_t base_divisor =
      std::max<idx_t>(1, base.paper_channels / base.channels);
  return base.scaled_by(base_divisor * divisor * env_scale());
}

/// Dataset spec at `divisor x env_scale()` below *paper* size — for benches
/// that need a specific absolute size (e.g. large enough that the matrix
/// streams exceed the host LLC).
inline phantom::DatasetSpec spec_paper_over(const std::string& name,
                                            idx_t divisor) {
  return phantom::dataset(name).scaled_by(divisor * env_scale());
}

/// Projection matrix of `spec` in the given ordering (both domains).
inline sparse::CsrMatrix build_matrix(const phantom::DatasetSpec& spec,
                                      hilbert::CurveKind kind,
                                      idx_t tile_size = 0) {
  const auto g = spec.geometry();
  const hilbert::Ordering sino(g.sinogram_extent(), kind, tile_size);
  const hilbert::Ordering tomo(g.tomogram_extent(), kind, tile_size);
  return geometry::build_projection_matrix(g, sino, tomo);
}

/// Per-slice regular matrix traffic of one solver iteration (one forward
/// plus one transpose apply) at multi-RHS width k, in bytes. Centralized so
/// every bench reporting "matrix bytes per slice" uses the same
/// perf::KernelWork accounting (matrix stream and staging-map reads
/// amortize over the k slices of a block apply; x gathers do not). The
/// accounting is precision-aware: compressed operators carry their actual
/// stored value width and measured varint bytes per index, so reduced-
/// precision work structs report the smaller footprint automatically.
inline double matrix_bytes_per_slice(const perf::KernelWork& fwd,
                                     const perf::KernelWork& bwd, int k) {
  return fwd.regular_bytes_at_width(k) + bwd.regular_bytes_at_width(k);
}

/// Median-of-reps timing of a kernel invocation (seconds). The first call
/// warms caches and is discarded.
template <class F>
double time_kernel(F&& fn, int reps = 5) {
  fn();  // warm-up
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    perf::WallTimer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace memxct::bench
