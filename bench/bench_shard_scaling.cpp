// Sharded-operator scaling smoke: P ∈ {1, 2, 4} shards over one phantom
// geometry, asserting the subsystem's two headline properties end to end:
//
//   1. bitwise parity — every P-shard CGLS image memcmp-equals the serial
//      P=1 reconstruction (owner-computes + halo duplication: no FP partial
//      sums ever cross a shard boundary);
//   2. memory-centric scaling — the max per-rank resident footprint shrinks
//      ~1/P as P grows (the Table 1 contrast with compute-centric
//      duplication), and the exchange stays sparser than dense duplication.
//
// Comm-gate fine print: parallel-beam CT couples every shard to the centre
// of rotation (every angle's rays cross it), so the AGGREGATE per-rank sent
// bytes obey the duplication lower bound N·(P−1)/P — they grow toward N with
// P at small shard counts, for any exchange algorithm. What the sparse plans
// do guarantee, and what we gate on, is (a) the per-peer message size — the
// sparse-alltoallv granularity — shrinks with P, and (b) the aggregate
// growth ratio stays strictly below the dense-duplication bound
// ((P₂−1)/P₂)/((P₁−1)/P₁), i.e. the footprint compaction prunes real bytes.
//
// Also reports the comm-vs-compute split (measured per-round copy times),
// the exchange time the tile pipeline hid behind compute (overlap_saved),
// and the alpha-beta model's cost for the same traffic next to the
// measurement — the model-vs-measured skew column says how far the target
// interconnect's projection is from what this host actually paid.
//
//   bench_shard_scaling [--json <path>] [--quick]
//
// Exits nonzero when parity or scaling is violated — CI runs this as a
// gate, not just a report. Honors MEMXCT_BENCH_SCALE like every bench.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/reconstructor.hpp"
#include "io/table.hpp"
#include "phantom/phantom.hpp"

namespace {

using namespace memxct;

struct Row {
  int shards = 1;
  bool bitwise_equal = true;        ///< vs the serial P=1 image.
  std::int64_t total_bytes = 0;     ///< Sum of per-rank resident bytes.
  std::int64_t max_rank_bytes = 0;  ///< Widest shard's resident footprint.
  std::int64_t max_rank_sent = 0;   ///< Widest shard's exchange bytes/solve.
  std::int64_t sent_per_peer = 0;   ///< max_rank_sent / (P - 1): message size.
  double comm_seconds = 0.0;  ///< Measured exchange time (whole solve).
  double comm_modeled_seconds = 0.0;  ///< Same traffic under the α–β model.
  double compute_seconds = 0.0;       ///< Measured local-kernel wall time.
  double overlap_saved_seconds = 0.0;
  double solve_seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg == "--quick") quick = true;
    else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--quick]\n", argv[0]);
      return 1;
    }
  }

  // Floor of 32: below that the halo-sparsity margin over the dense
  // duplication bound evaporates and the traffic gate turns into noise.
  const idx_t size =
      std::max<idx_t>(32, (quick ? 48 : 128) / bench::env_scale());
  const idx_t angles = size * 3 / 2;
  const auto g = geometry::make_geometry(angles, size);
  const auto image = phantom::shepp_logan(size);
  const auto sino = phantom::forward_project(g, image);

  core::Config config;
  config.iterations = quick ? 6 : 12;

  std::printf("shard scaling: %d x %d sinogram, CGLS x%d, P in {1, 2, 4}\n\n",
              angles, size, config.iterations);

  // Serial reference (also the P=1 row: same operator family, no shards).
  const core::Reconstructor serial(g, config);
  const auto reference = serial.reconstruct(sino);
  std::vector<Row> rows;
  {
    Row row;
    row.shards = 1;
    row.total_bytes = serial.preprocess_report().regular_bytes;
    row.max_rank_bytes = row.total_bytes;
    row.solve_seconds = reference.solve.seconds;
    rows.push_back(row);
  }

  for (const int shards : {2, 4}) {
    core::Config sharded = config;
    sharded.num_shards = shards;
    const core::Reconstructor recon(g, sharded);
    const auto* op = recon.shard_op();
    const auto result = recon.reconstruct(sino);

    Row row;
    row.shards = shards;
    row.bitwise_equal =
        result.image.size() == reference.image.size() &&
        std::memcmp(result.image.data(), reference.image.data(),
                    result.image.size() * sizeof(real)) == 0;
    row.total_bytes = op->bytes();
    for (int p = 0; p < shards; ++p) {
      row.max_rank_bytes = std::max(row.max_rank_bytes, op->rank_bytes(p));
      row.max_rank_sent =
          std::max(row.max_rank_sent, op->rank_comm_stats(p).bytes_sent);
    }
    row.sent_per_peer = row.max_rank_sent / (shards - 1);
    // reconstruct_slice reset the counters at solve start, so the stats are
    // exactly this solve's applies.
    row.comm_seconds = op->stats().comm_seconds;
    row.comm_modeled_seconds = op->stats().comm_modeled_seconds;
    row.compute_seconds = op->stats().compute_seconds;
    row.overlap_saved_seconds = op->stats().overlap_saved_seconds;
    row.solve_seconds = result.solve.seconds;
    rows.push_back(row);
  }

  io::TablePrinter table("Sharded scaling (per-solve, CGLS)");
  table.header({"P", "parity", "max rank B", "total B", "max sent/solve",
                "sent/peer", "comm", "comm model", "model/meas", "compute",
                "overlap hid", "solve"});
  for (const Row& r : rows)
    table.row({std::to_string(r.shards), r.bitwise_equal ? "bitwise" : "DIFF",
               io::TablePrinter::bytes(static_cast<double>(r.max_rank_bytes)),
               io::TablePrinter::bytes(static_cast<double>(r.total_bytes)),
               io::TablePrinter::bytes(static_cast<double>(r.max_rank_sent)),
               io::TablePrinter::bytes(static_cast<double>(r.sent_per_peer)),
               io::TablePrinter::time_s(r.comm_seconds),
               io::TablePrinter::time_s(r.comm_modeled_seconds),
               r.comm_seconds > 0.0
                   ? io::TablePrinter::num(r.comm_modeled_seconds /
                                           r.comm_seconds)
                   : "-",
               io::TablePrinter::time_s(r.compute_seconds),
               io::TablePrinter::time_s(r.overlap_saved_seconds),
               io::TablePrinter::time_s(r.solve_seconds)});
  table.print();

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_shard_scaling: cannot open %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          out,
          "{\"shards\": %d, \"bitwise_equal\": %s, \"total_bytes\": %lld, "
          "\"max_rank_bytes\": %lld, \"max_rank_bytes_sent\": %lld, "
          "\"max_rank_bytes_sent_per_peer\": %lld, "
          "\"comm_seconds\": %.6g, \"comm_modeled_seconds\": %.6g, "
          "\"comm_model_skew\": %.6g, \"compute_seconds\": %.6g, "
          "\"overlap_saved_seconds\": %.6g, \"solve_seconds\": %.6g}%s\n",
          r.shards, r.bitwise_equal ? "true" : "false",
          static_cast<long long>(r.total_bytes),
          static_cast<long long>(r.max_rank_bytes),
          static_cast<long long>(r.max_rank_sent),
          static_cast<long long>(r.sent_per_peer), r.comm_seconds,
          r.comm_modeled_seconds,
          r.comm_seconds > 0.0 ? r.comm_modeled_seconds / r.comm_seconds
                               : 0.0,
          r.compute_seconds, r.overlap_saved_seconds, r.solve_seconds,
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  // CI gates.
  int violations = 0;
  for (const Row& r : rows)
    if (!r.bitwise_equal) {
      std::fprintf(stderr, "FAIL: P=%d image differs from the serial path\n",
                   r.shards);
      ++violations;
    }
  if (!(rows[2].max_rank_bytes < rows[1].max_rank_bytes &&
        rows[1].max_rank_bytes < rows[0].max_rank_bytes)) {
    std::fprintf(stderr,
                 "FAIL: max per-rank resident bytes do not shrink with P\n");
    ++violations;
  }
  if (!(rows[2].sent_per_peer < rows[1].sent_per_peer)) {
    std::fprintf(stderr,
                 "FAIL: per-peer exchange message size does not shrink from "
                 "P=2 to P=4\n");
    ++violations;
  }
  // Dense duplication would grow aggregate sent by ((4-1)/4)/((2-1)/2) =
  // 1.5x from P=2 to P=4; the sparse plans must beat that bound.
  if (!(2 * rows[2].max_rank_sent < 3 * rows[1].max_rank_sent)) {
    std::fprintf(stderr,
                 "FAIL: aggregate per-rank traffic does not beat the dense "
                 "duplication bound (1.5x growth P=2 -> P=4)\n");
    ++violations;
  }
  if (violations == 0)
    std::printf("\nOK: bitwise parity at every P; per-rank footprint and "
                "per-peer traffic shrink with P; aggregate exchange beats "
                "dense duplication\n");
  return violations == 0 ? 0 : 1;
}
