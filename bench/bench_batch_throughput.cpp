// Batch-engine throughput: the Table 5 "all slices" amortization argument
// measured end-to-end on one node.
//
// MemXCT pays preprocessing (ordering, tracing, transposition, buffers,
// plans) once per geometry; every additional slice of a 3D scan reuses the
// memoized operator. Two sweeps make that concrete on a 256^2 phantom:
//
//   * slice sweep (K=1): end-to-end seconds/slice = (preproc + batch)/S for
//     S in {1,2,4,8,16} — the amortized cost must fall steeply as S grows;
//   * worker sweep (S=16): batch wall time and slices/sec for K in {1,2,4}
//     — on a multi-core host the shared-storage operator views let workers
//     scale; on a single hardware thread the sweep degenerates gracefully
//     (reported, not hidden).
//
//   bench_batch_throughput [--json <path>]
//
// Honors MEMXCT_BENCH_SCALE (divides the 256^2 problem further for smoke
// runs).
#include <omp.h>

#include <cstdio>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "bench_util.hpp"
#include "core/reconstructor.hpp"
#include "io/table.hpp"
#include "phantom/phantom.hpp"

namespace {

using namespace memxct;

struct SliceRow {
  int slices;
  double batch_wall;
  double per_slice_end_to_end;
};

struct WorkerRow {
  int workers;
  double batch_wall;
  double slices_per_sec;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }

  const idx_t size = std::max<idx_t>(32, 256 / bench::env_scale());
  const idx_t angles = size * 3 / 2;
  const auto g = geometry::make_geometry(angles, size);
  core::Config config;
  config.iterations = 5;

  // Preprocessing, paid once per geometry.
  perf::WallTimer pre_timer;
  const core::Reconstructor recon(g, config);
  const double preproc = pre_timer.seconds();
  const long long operator_bytes =
      static_cast<long long>(recon.serial_op()->bytes());
  // Per-slice regular matrix traffic per CG iteration (shared bench_util
  // definition; width 1 — these sweeps run classic one-slice workers).
  const double matrix_traffic = bench::matrix_bytes_per_slice(
      recon.serial_op()->forward_work(), recon.serial_op()->transpose_work(),
      /*k=*/1);

  const auto image = phantom::shepp_logan(size);
  const auto sinogram = phantom::forward_project(g, image);

  const auto run_batch = [&](int num_slices, int workers) {
    batch::BatchReconstructor engine(
        recon, {.workers = workers, .keep_images = false});
    for (int s = 0; s < num_slices; ++s) engine.submit(sinogram);
    const auto results = engine.wait_all();
    (void)results;
    return engine.report();
  };
  (void)run_batch(1, 1);  // warm caches before timing

  std::printf("geometry %d x %d, %d CG iterations, preprocessing %.3f s, "
              "operator %s, matrix traffic %s/slice/iteration\n\n",
              angles, size, config.iterations, preproc,
              io::TablePrinter::bytes(static_cast<double>(operator_bytes))
                  .c_str(),
              io::TablePrinter::bytes(matrix_traffic).c_str());

  // Slice sweep: amortization of the one-time preprocessing.
  std::vector<SliceRow> slice_rows;
  {
    io::TablePrinter table("Preprocessing amortization (K=1 worker)");
    table.header({"slices", "batch wall", "end-to-end/slice", "vs S=1"});
    double baseline = 0.0;
    for (const int s : {1, 2, 4, 8, 16}) {
      const auto rep = run_batch(s, 1);
      const double per_slice = (preproc + rep.wall_seconds) / s;
      if (s == 1) baseline = per_slice;
      slice_rows.push_back({s, rep.wall_seconds, per_slice});
      table.row({std::to_string(s), io::TablePrinter::time_s(rep.wall_seconds),
                 io::TablePrinter::time_s(per_slice),
                 io::TablePrinter::num(baseline / per_slice, 2) + "x"});
    }
    table.print();
  }

  // Worker sweep at S=16.
  std::vector<WorkerRow> worker_rows;
  {
    io::TablePrinter table("Worker scaling (S=16 slices)");
    table.header({"workers", "omp/worker", "batch wall", "slices/s", "vs K=1"});
    double baseline = 0.0;
    for (const int k : {1, 2, 4}) {
      const auto rep = run_batch(16, k);
      if (k == 1) baseline = rep.slices_per_second;
      worker_rows.push_back({k, rep.wall_seconds, rep.slices_per_second});
      table.row({std::to_string(k),
                 std::to_string(std::max(1, omp_get_max_threads() / k)),
                 io::TablePrinter::time_s(rep.wall_seconds),
                 io::TablePrinter::num(rep.slices_per_second, 3),
                 io::TablePrinter::num(rep.slices_per_second /
                                        std::max(baseline, 1e-12), 2) + "x"});
    }
    table.print();
    if (omp_get_max_threads() < 4)
      std::printf("note: only %d hardware thread(s) available — worker "
                  "scaling is core-bound here and shows on multi-core "
                  "hosts.\n",
                  omp_get_max_threads());
  }

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_batch_throughput: cannot open %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(out, "[\n");
    bool first = true;
    for (const auto& r : slice_rows) {
      if (!first) std::fprintf(out, ",\n");
      first = false;
      std::fprintf(out,
                   "{\"sweep\": \"slices\", \"slices\": %d, \"workers\": 1, "
                   "\"preprocess_s\": %.6g, \"operator_bytes\": %lld, "
                   "\"matrix_bytes_per_slice\": %.6g, "
                   "\"batch_wall_s\": %.6g, "
                   "\"end_to_end_per_slice_s\": %.6g}",
                   r.slices, preproc, operator_bytes, matrix_traffic,
                   r.batch_wall, r.per_slice_end_to_end);
    }
    for (const auto& r : worker_rows) {
      std::fprintf(out, ",\n");
      std::fprintf(out,
                   "{\"sweep\": \"workers\", \"slices\": 16, \"workers\": %d, "
                   "\"matrix_bytes_per_slice\": %.6g, "
                   "\"batch_wall_s\": %.6g, \"slices_per_second\": %.6g}",
                   r.workers, matrix_traffic, r.batch_wall, r.slices_per_sec);
    }
    std::fprintf(out, "\n]\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
