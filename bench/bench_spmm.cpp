// Multi-RHS (SpMM) amortization sweep: block width K ∈ {1,2,4,8,16} for
// every kernel family, measuring how streaming the memoized matrix once
// per K slices converts bandwidth into throughput.
//
// For each family the K=1 row times the actual single-RHS kernel (the
// production baseline — strict scalar inner loop), and K>1 rows time the
// interleaved block kernel from sparse/spmm.hpp. Reported per row:
//
//   * seconds per apply (the whole K-wide pass),
//   * slices/s = K / seconds — the throughput the batch engine buys,
//   * amortized regular matrix traffic per slice
//     (perf::KernelWork::regular_bytes_at_width — matrix stream and
//     staging-map reads divide by K, per-slice x gathers do not),
//   * GFLOPS across all K lanes.
//
//   bench_spmm [--json <path>] [--quick]
//
// --quick shrinks the geometry and the rep count for CI smoke runs.
// Honors MEMXCT_BENCH_SCALE like every bench.
#include <omp.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "io/table.hpp"
#include "sparse/buffered.hpp"
#include "sparse/compressed.hpp"
#include "sparse/ell.hpp"
#include "sparse/plan.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmv.hpp"

namespace {

using namespace memxct;

struct Row {
  std::string kernel;
  int k = 1;
  double seconds = 0.0;          ///< One K-wide apply.
  double slices_per_s = 0.0;
  double bytes_per_slice = 0.0;  ///< Regular matrix traffic, amortized.
  double bytes_per_fma = 0.0;    ///< Matrix stream (value + index) per FMA.
  double gflops = 0.0;           ///< Across all K lanes.
};

struct Family {
  std::string name;
  perf::KernelWork work;
  std::function<void()> single;            ///< K=1 production kernel.
  std::function<void(idx_t)> block;        ///< K-wide block kernel.
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
    else if (arg == "--quick") quick = true;
    else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--quick]\n", argv[0]);
      return 1;
    }
  }

  const idx_t size =
      std::max<idx_t>(32, (quick ? 64 : 256) / bench::env_scale());
  const idx_t angles = size * 3 / 2;
  const int reps = quick ? 2 : 5;
  const std::vector<int> widths = {1, 2, 4, 8, 16};
  const idx_t max_width = 16;

  // Hilbert-ordered matrix — the production layout all kernels consume.
  phantom::DatasetSpec spec;
  spec.name = "spmm-sweep";
  spec.angles = angles;
  spec.channels = size;
  const auto a = bench::build_matrix(spec, hilbert::CurveKind::Hilbert);
  const auto buffered = sparse::build_buffered(a, {128, 4096});
  const auto ell = sparse::to_ell_block(a, 64);
  // Reduced-precision compressed variants: 16-bit values + delta/varint
  // index streams. Their KernelWork carries the MEASURED per-FMA byte
  // widths, so the amortized-traffic column reflects the real compression.
  const auto ccsr_bf16 =
      sparse::compress_csr(a, sparse::kCsrPartsize, sparse::ValueStorage::Bf16);
  const auto ccsr_fp16 =
      sparse::compress_csr(a, sparse::kCsrPartsize, sparse::ValueStorage::Fp16);
  const auto cbuf_bf16 =
      sparse::compress_buffered(buffered, sparse::ValueStorage::Bf16);
  const auto cbuf_fp16 =
      sparse::compress_buffered(buffered, sparse::ValueStorage::Fp16);
  const auto n = static_cast<std::size_t>(a.num_cols);
  const auto m = static_cast<std::size_t>(a.num_rows);
  const int slots = omp_get_max_threads();

  std::printf("geometry %d x %d (%lld nnz), %d threads, %d reps, "
              "K sweep {1,2,4,8,16}\n\n",
              angles, size, static_cast<long long>(a.nnz()), slots, reps);

  // Plans and workspaces are shared with the single-RHS path; block
  // workspaces are sized once at the widest K.
  const auto csr_plan = sparse::ApplyPlan::build(
      sparse::partition_nnz(a, sparse::kCsrPartsize), slots);
  const auto buf_plan =
      sparse::ApplyPlan::build(sparse::partition_nnz(buffered), slots);
  const auto ell_plan =
      sparse::ApplyPlan::build(sparse::partition_nnz(ell), slots);
  sparse::Workspace buf_ws(slots, buffered.config.buffsize * max_width,
                           buffered.config.partsize * max_width);
  sparse::Workspace ell_ws(slots, 0, ell.block_rows * max_width);

  // Deterministic inputs; lanes differ so a broken lane mapping would show.
  AlignedVector<real> x1(n), y1(m);
  for (std::size_t i = 0; i < n; ++i)
    x1[i] = 0.25f + static_cast<real>(i % 17) * 0.0625f;
  AlignedVector<real> xk(n * static_cast<std::size_t>(max_width));
  AlignedVector<real> yk(m * static_cast<std::size_t>(max_width));
  for (std::size_t i = 0; i < n; ++i)
    for (idx_t s = 0; s < max_width; ++s)
      xk[i * static_cast<std::size_t>(max_width) + static_cast<std::size_t>(s)] =
          x1[i] + static_cast<real>(s) * 0.001f;
  // K-specific interleaved views: rebuild per K from the same base values.
  const auto fill_xk = [&](idx_t k) {
    const auto kk = static_cast<std::size_t>(k);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t s = 0; s < kk; ++s)
        xk[i * kk + s] = x1[i] + static_cast<real>(s) * 0.001f;
  };

  std::vector<Family> families;
  families.push_back(
      {"csr", sparse::csr_work(a),
       [&] { sparse::spmv_csr(a, x1, y1); },
       [&](idx_t k) { sparse::spmm_csr(a, k, xk, yk); }});
  families.push_back(
      {"csr-planned", sparse::csr_work(a),
       [&] { sparse::spmv_csr_planned(a, sparse::kCsrPartsize, csr_plan, x1, y1); },
       [&](idx_t k) {
         sparse::spmm_csr_planned(a, sparse::kCsrPartsize, csr_plan, k, xk, yk);
       }});
  families.push_back(
      {"library", sparse::csr_work(a),
       [&] { sparse::spmv_library(a, x1, y1); },
       [&](idx_t k) { sparse::spmm_library(a, k, xk, yk); }});
  families.push_back(
      {"ell", sparse::ell_work(ell),
       [&] { sparse::spmv_ell(ell, x1, y1); },
       [&](idx_t k) { sparse::spmm_ell(ell, k, xk, yk); }});
  families.push_back(
      {"ell-planned", sparse::ell_work(ell),
       [&] { sparse::spmv_ell_planned(ell, ell_plan, ell_ws, x1, y1); },
       [&](idx_t k) {
         sparse::spmm_ell_planned(ell, ell_plan, ell_ws, k, xk, yk);
       }});
  families.push_back(
      {"buffered", sparse::buffered_work(buffered),
       [&] { sparse::spmv_buffered(buffered, x1, y1); },
       [&](idx_t k) { sparse::spmm_buffered(buffered, k, xk, yk); }});
  families.push_back(
      {"buffered-planned", sparse::buffered_work(buffered),
       [&] { sparse::spmv_buffered_planned(buffered, buf_plan, buf_ws, x1, y1); },
       [&](idx_t k) {
         sparse::spmm_buffered_planned(buffered, buf_plan, buf_ws, k, xk, yk);
       }});
  families.push_back(
      {"ccsr-bf16", sparse::ccsr_work(ccsr_bf16),
       [&] { sparse::spmv_ccsr(ccsr_bf16, x1, y1); },
       [&](idx_t k) { sparse::spmm_ccsr(ccsr_bf16, k, xk, yk); }});
  families.push_back(
      {"ccsr-bf16-planned", sparse::ccsr_work(ccsr_bf16),
       [&] { sparse::spmv_ccsr_planned(ccsr_bf16, csr_plan, x1, y1); },
       [&](idx_t k) {
         sparse::spmm_ccsr_planned(ccsr_bf16, csr_plan, k, xk, yk);
       }});
  families.push_back(
      {"ccsr-fp16", sparse::ccsr_work(ccsr_fp16),
       [&] { sparse::spmv_ccsr(ccsr_fp16, x1, y1); },
       [&](idx_t k) { sparse::spmm_ccsr(ccsr_fp16, k, xk, yk); }});
  families.push_back(
      {"cbuffered-bf16", sparse::cbuffered_work(cbuf_bf16),
       [&] { sparse::spmv_cbuffered(cbuf_bf16, x1, y1); },
       [&](idx_t k) { sparse::spmm_cbuffered(cbuf_bf16, k, xk, yk); }});
  families.push_back(
      {"cbuffered-bf16-planned", sparse::cbuffered_work(cbuf_bf16),
       [&] {
         sparse::spmv_cbuffered_planned(cbuf_bf16, buf_plan, buf_ws, x1, y1);
       },
       [&](idx_t k) {
         sparse::spmm_cbuffered_planned(cbuf_bf16, buf_plan, buf_ws, k, xk,
                                        yk);
       }});
  families.push_back(
      {"cbuffered-fp16", sparse::cbuffered_work(cbuf_fp16),
       [&] { sparse::spmv_cbuffered(cbuf_fp16, x1, y1); },
       [&](idx_t k) { sparse::spmm_cbuffered(cbuf_fp16, k, xk, yk); }});

  std::vector<Row> rows;
  io::TablePrinter table("Multi-RHS sweep (slices/s and amortized traffic)");
  table.header({"kernel", "K", "s/apply", "slices/s", "vs K=1",
                "MB/slice/apply", "B/FMA", "GFLOPS"});
  for (const auto& fam : families) {
    double baseline = 0.0;
    for (const int k : widths) {
      double t;
      if (k == 1) {
        t = bench::time_kernel([&] { fam.single(); }, reps);
      } else {
        fill_xk(static_cast<idx_t>(k));
        t = bench::time_kernel(
            [&] { fam.block(static_cast<idx_t>(k)); }, reps);
      }
      Row row;
      row.kernel = fam.name;
      row.k = k;
      row.seconds = t;
      row.slices_per_s = t > 0.0 ? k / t : 0.0;
      row.bytes_per_slice = fam.work.regular_bytes_at_width(k);
      row.bytes_per_fma = fam.work.bytes_per_fma();
      row.gflops = t > 0.0 ? k * fam.work.flops() / t * 1e-9 : 0.0;
      if (k == 1) baseline = row.slices_per_s;
      table.row({fam.name, std::to_string(k),
                 io::TablePrinter::time_s(row.seconds),
                 io::TablePrinter::num(row.slices_per_s, 2),
                 io::TablePrinter::num(
                     row.slices_per_s / std::max(baseline, 1e-12), 2) + "x",
                 io::TablePrinter::num(row.bytes_per_slice * 1e-6, 2),
                 io::TablePrinter::num(row.bytes_per_fma, 2),
                 io::TablePrinter::num(row.gflops, 2)});
      rows.push_back(std::move(row));
    }
  }
  table.print();
  std::printf("\nmatrix traffic per slice divides by K (map reads included "
              "for buffered; per-slice x gathers do not amortize)\n");

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_spmm: cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "{\"kernel\": \"%s\", \"k\": %d, \"seconds\": %.6g, "
                   "\"slices_per_second\": %.6g, "
                   "\"matrix_bytes_per_slice\": %.6g, "
                   "\"matrix_bytes_per_fma\": %.6g, \"gflops\": %.6g}%s\n",
                   r.kernel.c_str(), r.k, r.seconds, r.slices_per_s,
                   r.bytes_per_slice, r.bytes_per_fma, r.gflops,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "]\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
