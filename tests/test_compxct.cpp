// Tests for the compute-centric (on-the-fly) operator against the memoized
// one: same mathematics, different execution strategy.
#include <gtest/gtest.h>

#include "compxct/compxct.hpp"
#include "geometry/projector.hpp"
#include "solve/sirt.hpp"
#include "sparse/spmv.hpp"
#include "sparse/transpose.hpp"
#include "test_util.hpp"

namespace memxct::compxct {
namespace {

class ScatterModes : public ::testing::TestWithParam<ScatterMode> {};

TEST_P(ScatterModes, ForwardMatchesMemoized) {
  const auto g = geometry::make_geometry(12, 16);
  const CompXctOperator onthefly(g, GetParam());
  const auto a = geometry::build_projection_matrix_natural(g);
  const auto x = testutil::random_vector(a.num_cols, 61);
  AlignedVector<real> y_fly(static_cast<std::size_t>(a.num_rows));
  AlignedVector<real> y_mem(static_cast<std::size_t>(a.num_rows));
  onthefly.apply(x, y_fly);
  sparse::spmv_reference(a, x, y_mem);
  EXPECT_LT(testutil::rel_error(y_fly, y_mem), 1e-5);
}

TEST_P(ScatterModes, BackprojectionMatchesMemoized) {
  const auto g = geometry::make_geometry(12, 16);
  const CompXctOperator onthefly(g, GetParam());
  const auto a = geometry::build_projection_matrix_natural(g);
  const auto at = sparse::transpose(a);
  const auto y = testutil::random_vector(a.num_rows, 62);
  AlignedVector<real> x_fly(static_cast<std::size_t>(a.num_cols));
  AlignedVector<real> x_mem(static_cast<std::size_t>(a.num_cols));
  onthefly.apply_transpose(y, x_fly);
  sparse::spmv_reference(at, y, x_mem);
  EXPECT_LT(testutil::rel_error(x_fly, x_mem), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(BothModes, ScatterModes,
                         ::testing::Values(ScatterMode::Replicate,
                                           ScatterMode::Atomic));

TEST(CompXct, RedundantTracingAccumulatesPerIteration) {
  // The defining cost of CompXCT (Listing 1): every iteration re-traces
  // every ray. SIRT does one forward + one backprojection per iteration
  // plus the two scaling setups.
  const auto g = geometry::make_geometry(8, 12);
  const CompXctOperator op(g);
  const auto rays = static_cast<std::int64_t>(g.sinogram_extent().size());
  AlignedVector<real> y(static_cast<std::size_t>(rays), 1.0f);
  const int iterations = 5;
  (void)solve::sirt(op, y, {.max_iterations = iterations});
  // 2 setup applies + 2 applies per iteration, each tracing all rays.
  EXPECT_EQ(op.rays_traced(), rays * (2 + 2 * iterations));
}

TEST(CompXct, SirtAgreesAcrossOperators) {
  // End-to-end: SIRT through the on-the-fly operator equals SIRT through
  // the memoized matrices (same algorithm, same arithmetic graph).
  const auto g = geometry::make_geometry(10, 14);
  const auto a = geometry::build_projection_matrix_natural(g);

  class MemoizedOperator final : public solve::LinearOperator {
   public:
    explicit MemoizedOperator(const sparse::CsrMatrix& m)
        : a_(m), at_(sparse::transpose(m)) {}
    idx_t num_rows() const override { return a_.num_rows; }
    idx_t num_cols() const override { return a_.num_cols; }
    void apply(std::span<const real> x, std::span<real> y) const override {
      sparse::spmv_csr(a_, x, y);
    }
    void apply_transpose(std::span<const real> y,
                         std::span<real> x) const override {
      sparse::spmv_csr(at_, y, x);
    }

   private:
    const sparse::CsrMatrix& a_;
    sparse::CsrMatrix at_;
  };

  const CompXctOperator fly(g);
  const MemoizedOperator mem(a);
  const auto y = testutil::random_vector(a.num_rows, 63);
  const auto r_fly = solve::sirt(fly, y, {.max_iterations = 8});
  const auto r_mem = solve::sirt(mem, y, {.max_iterations = 8});
  EXPECT_LT(testutil::rel_error(r_fly.x, r_mem.x), 1e-3);
}

}  // namespace
}  // namespace memxct::compxct
