// Tests for the analytic ellipse projector — and its agreement with the
// Siddon tracer (two independent implementations of the same transform).
#include <gtest/gtest.h>

#include <cmath>

#include "phantom/analytic.hpp"
#include "phantom/phantom.hpp"

namespace memxct::phantom {
namespace {

TEST(Analytic, CircleIntegralIsChord) {
  // Unit-attenuation circle of radius R centered at origin: the ray at
  // perpendicular offset t has integral 2*sqrt(R² - t²).
  const auto g = geometry::make_geometry(8, 32);
  const AnalyticEllipse circle{0, 0, 10.0, 10.0, 0.0, 1.0};
  for (idx_t a = 0; a < g.num_angles; ++a)
    for (idx_t c = 0; c < g.num_channels; ++c) {
      const double t = g.channel_offset(c);
      const double expected =
          std::abs(t) < 10.0 ? 2.0 * std::sqrt(100.0 - t * t) : 0.0;
      EXPECT_NEAR(ellipse_ray_integral(circle, g, a, c), expected, 1e-9)
          << "angle " << a << " channel " << c;
    }
}

TEST(Analytic, RotationInvarianceOfCircle) {
  // A circle's projection is identical at every angle; the channel-sampled
  // mass varies only by the Riemann error of the unit-spaced sampling,
  // which shrinks with channel count.
  const auto g = geometry::make_geometry(16, 512);
  const AnalyticEllipse circle{1.5, -2.0, 50.0, 50.0, 0.0, 2.0};
  double first = -1.0;
  for (idx_t a = 0; a < g.num_angles; ++a) {
    double mass = 0.0;
    for (idx_t c = 0; c < g.num_channels; ++c)
      mass += ellipse_ray_integral(circle, g, a, c);
    if (first < 0)
      first = mass;
    else
      EXPECT_NEAR(mass, first, 2e-3 * first);
  }
}

TEST(Analytic, MassConservationAcrossAngles) {
  // Sum over channels of any projection equals the image mass (area x
  // attenuation) for every angle — the Radon transform's zeroth moment.
  const auto g = geometry::make_geometry(12, 64);
  const auto ellipses = shepp_logan_ellipses(48);
  double expected = 0.0;
  for (const auto& e : ellipses)
    expected += e.attenuation * 3.14159265358979323846 * e.ax * e.ay;
  const auto sinogram = analytic_sinogram(g, ellipses);
  for (idx_t a = 0; a < g.num_angles; ++a) {
    double mass = 0.0;
    for (idx_t c = 0; c < g.num_channels; ++c)
      mass += sinogram[static_cast<std::size_t>(g.ray_index(a, c))];
    EXPECT_NEAR(mass, expected, 0.02 * std::abs(expected)) << "angle " << a;
  }
}

TEST(Analytic, TiltedEllipseMatchesNumericalQuadrature) {
  const auto g = geometry::make_geometry(8, 32);
  const AnalyticEllipse e{2.0, -1.0, 8.0, 3.0, 0.7, 1.5};
  // Integrate along one ray numerically.
  const idx_t a = 3, c = 17;
  const double theta = g.angle(a);
  const double t = g.channel_offset(c);
  const double nx = -std::sin(theta), ny = std::cos(theta);
  const double dx = std::cos(theta), dy = std::sin(theta);
  double numeric = 0.0;
  const double du = 1e-3;
  for (double u = -32.0; u < 32.0; u += du) {
    const double px = t * nx + u * dx - e.cx;
    const double py = t * ny + u * dy - e.cy;
    const double cp = std::cos(e.theta), sp = std::sin(e.theta);
    const double qx = (cp * px + sp * py) / e.ax;
    const double qy = (-sp * px + cp * py) / e.ay;
    if (qx * qx + qy * qy <= 1.0) numeric += du * e.attenuation;
  }
  EXPECT_NEAR(ellipse_ray_integral(e, g, a, c), numeric, 1e-2);
}

TEST(Analytic, SiddonAgreesWithAnalyticOnSheppLogan) {
  // The discretized phantom's traced projection converges to the analytic
  // Radon transform; at n=96 the relative L2 gap is a few percent.
  const idx_t n = 96;
  const auto g = geometry::make_geometry(48, n);
  const auto ellipses = shepp_logan_ellipses(n);
  const auto exact = analytic_sinogram(g, ellipses);
  const auto image = render_analytic(n, ellipses);
  const auto traced = forward_project(g, image);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const double d = static_cast<double>(traced[i]) - exact[i];
    num += d * d;
    den += static_cast<double>(exact[i]) * exact[i];
  }
  EXPECT_LT(std::sqrt(num / den), 0.05);
}

TEST(Analytic, RenderMatchesPhantomModule) {
  // render_analytic(shepp_logan_ellipses) and phantom::shepp_logan are the
  // same image (independent rasterizers of the same ellipse set).
  const idx_t n = 64;
  const auto a = render_analytic(n, shepp_logan_ellipses(n));
  const auto b = shepp_logan(n);
  ASSERT_EQ(a.size(), b.size());
  idx_t diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > 1e-6) ++diffs;
  // Boundary pixels can disagree (different inside tests at edges);
  // interiors must match.
  EXPECT_LT(diffs, static_cast<idx_t>(a.size() / 100));
}

TEST(Analytic, MissingRayIsZero) {
  const auto g = geometry::make_geometry(4, 64);
  const AnalyticEllipse tiny{0, 0, 0.5, 0.5, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(ellipse_ray_integral(tiny, g, 0, 0), 0.0);
}

}  // namespace
}  // namespace memxct::phantom
