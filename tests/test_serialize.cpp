// Tests for binary matrix/vector serialization (preprocessing cache).
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "common/error.hpp"
#include "io/serialize.hpp"
#include "sparse/buffered.hpp"
#include "test_util.hpp"

namespace memxct::io {
namespace {

TEST(Serialize, CsrRoundTripBitExact) {
  const auto a = testutil::random_csr(57, 43, 0.15, 21);
  const std::string path = "/tmp/memxct_roundtrip.csr";
  save_csr(path, a);
  const auto b = load_csr(path);
  EXPECT_EQ(b.num_rows, a.num_rows);
  EXPECT_EQ(b.num_cols, a.num_cols);
  ASSERT_EQ(b.nnz(), a.nnz());
  for (idx_t r = 0; r <= a.num_rows; ++r) EXPECT_EQ(b.displ[r], a.displ[r]);
  for (nnz_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(b.ind[k], a.ind[k]);
    EXPECT_EQ(b.val[k], a.val[k]);  // bit-exact float
  }
  std::remove(path.c_str());
}

TEST(Serialize, EmptyMatrixRoundTrip) {
  sparse::CsrBuilder builder(3, 4);
  const auto a = builder.assemble();
  const std::string path = "/tmp/memxct_empty.csr";
  save_csr(path, a);
  const auto b = load_csr(path);
  EXPECT_EQ(b.num_rows, 3);
  EXPECT_EQ(b.num_cols, 4);
  EXPECT_EQ(b.nnz(), 0);
  std::remove(path.c_str());
}

TEST(Serialize, BufferedMatrixRoundTrip) {
  const auto a = testutil::banded_csr(100, 120, 8, 26);
  const auto bm = sparse::build_buffered(a, {16, 64});
  const std::string path = "/tmp/memxct_buffered.bin";
  save_buffered(path, bm);
  const auto loaded = load_buffered(path);
  EXPECT_EQ(loaded.num_rows, bm.num_rows);
  EXPECT_EQ(loaded.config.partsize, bm.config.partsize);
  EXPECT_EQ(loaded.config.buffsize, bm.config.buffsize);
  EXPECT_EQ(loaded.num_stages(), bm.num_stages());
  EXPECT_EQ(loaded.map, bm.map);
  EXPECT_EQ(loaded.ind, bm.ind);
  EXPECT_EQ(loaded.val, bm.val);
  // The loaded structure must compute identically.
  const auto x = testutil::random_vector(120, 27);
  AlignedVector<real> y1(100), y2(100);
  sparse::spmv_buffered(bm, x, y1);
  sparse::spmv_buffered(loaded, x, y2);
  EXPECT_EQ(y1, y2);
  std::remove(path.c_str());
}

TEST(Serialize, BufferedRejectsWrongMagic) {
  const auto a = testutil::random_csr(10, 10, 0.4, 28);
  const std::string path = "/tmp/memxct_notbuf.bin";
  save_csr(path, a);
  EXPECT_THROW(load_buffered(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, VectorRoundTrip) {
  const auto v = testutil::random_vector(1234, 22);
  const std::string path = "/tmp/memxct_vec.bin";
  save_vector(path, v);
  const auto w = load_vector(path);
  ASSERT_EQ(w.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(w[i], v[i]);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsWrongMagic) {
  const std::string path = "/tmp/memxct_badmagic.bin";
  const auto v = testutil::random_vector(8, 23);
  save_vector(path, v);
  EXPECT_THROW(load_csr(path), InvalidArgument);  // vector file as CSR
  std::remove(path.c_str());
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(load_csr("/tmp/does_not_exist.csr"), InvalidArgument);
  EXPECT_THROW(load_vector("/tmp/does_not_exist.vec"), InvalidArgument);
}

TEST(Serialize, RejectsTruncatedFile) {
  const auto a = testutil::random_csr(20, 20, 0.3, 24);
  const std::string path = "/tmp/memxct_trunc.csr";
  save_csr(path, a);
  // Truncate to half size.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_THROW(load_csr(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, CorruptHeaderCannotForceHugeAllocation) {
  // Overwrite the nnz header field with an absurd count: the loader must
  // reject it against the actual file size (InvalidArgument) instead of
  // attempting a petabyte resize.
  const auto a = testutil::random_csr(10, 10, 0.5, 29);
  const std::string path = "/tmp/memxct_bigcount.csr";
  save_csr(path, a);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 8 + 16, SEEK_SET);  // header: 8 magic + rows, cols, *nnz*
  const std::int64_t huge = std::int64_t{1} << 50;
  std::fwrite(&huge, sizeof(huge), 1, f);
  std::fclose(f);
  EXPECT_THROW((void)load_csr(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, TrailingBytesRejected) {
  const auto a = testutil::random_csr(10, 10, 0.5, 30);
  const std::string path = "/tmp/memxct_trailing.csr";
  save_csr(path, a);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const char junk[16] = {};
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW((void)load_csr(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, FuzzTruncationAlwaysTypedError) {
  // Seeded fuzz over every legacy format: any truncation point must yield
  // a typed error (size budget), never a crash or silent partial load.
  Rng rng(71);
  const auto a = testutil::random_csr(20, 20, 0.3, 31);
  const auto bm = sparse::build_buffered(testutil::banded_csr(60, 70, 6, 32),
                                         {16, 64});
  const auto v = testutil::random_vector(100, 33);
  const std::string path = "/tmp/memxct_fuzz_trunc.bin";
  for (int trial = 0; trial < 40; ++trial) {
    const int format = trial % 3;
    if (format == 0) save_csr(path, a);
    else if (format == 1) save_buffered(path, bm);
    else save_vector(path, v);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    const auto keep = static_cast<long>(rng.uniform_int(
        static_cast<std::uint64_t>(size)));  // [0, size): always truncated
    ASSERT_EQ(truncate(path.c_str(), keep), 0);
    if (format == 0) {
      EXPECT_THROW((void)load_csr(path), InvalidArgument) << "keep=" << keep;
    } else if (format == 1) {
      EXPECT_THROW((void)load_buffered(path), InvalidArgument)
          << "keep=" << keep;
    } else {
      EXPECT_THROW((void)load_vector(path), InvalidArgument)
          << "keep=" << keep;
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, FuzzByteFlipNeverCrashes) {
  // The legacy format has no checksum, so a flipped value byte is
  // legitimately undetectable — but a flip anywhere must either load
  // cleanly or fail with one of the two typed errors. Anything else
  // (unbounded allocation, over-read, uncaught exception) fails the test.
  Rng rng(72);
  const auto a = testutil::random_csr(20, 20, 0.3, 34);
  const auto v = testutil::random_vector(100, 35);
  const std::string path = "/tmp/memxct_fuzz_flip.bin";
  for (int trial = 0; trial < 60; ++trial) {
    const int format = trial % 2;
    if (format == 0) save_csr(path, a);
    else save_vector(path, v);
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    const auto offset = static_cast<long>(
        rng.uniform_int(static_cast<std::uint64_t>(size)));
    std::fseek(f, offset, SEEK_SET);
    const int byte = std::fgetc(f);
    const char flipped = static_cast<char>(
        byte ^ static_cast<int>(1 + rng.uniform_int(255)));
    std::fseek(f, offset, SEEK_SET);
    std::fputc(flipped, f);
    std::fclose(f);
    try {
      if (format == 0) (void)load_csr(path);
      else (void)load_vector(path);
    } catch (const InvalidArgument&) {
    } catch (const InvariantError&) {
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, ValidatesLoadedStructure) {
  // Corrupt an index beyond num_cols: load must throw from validate().
  const auto a = testutil::random_csr(10, 10, 0.5, 25);
  const std::string path = "/tmp/memxct_corrupt.csr";
  save_csr(path, a);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  // Header: 8 magic + 24 dims; displ: (rows+1)*8; first ind entry follows.
  std::fseek(f, 8 + 24 + 11 * 8, SEEK_SET);
  const idx_t bad = 999;
  std::fwrite(&bad, sizeof(bad), 1, f);
  std::fclose(f);
  EXPECT_THROW(load_csr(path), InvariantError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memxct::io
