// Reduced-precision operator tests: bf16/fp16 conversion edge cases
// (subnormals, NaN propagation), fp64-referenced error budgets for every
// compressed kernel family at K ∈ {1, 4, 8}, SpMM lane parity, operator
// adjoint/linearity under quantization, reconstruction PSNR vs fp32, the
// measured B/FMA reduction, and the compressed disk-cache round trip
// including corrupt-entry rebuild.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/error.hpp"
#include "core/opkey.hpp"
#include "core/reconstructor.hpp"
#include "geometry/projector.hpp"
#include "phantom/datasets.hpp"
#include "phantom/phantom.hpp"
#include "pre/normalize.hpp"
#include "resil/checked_io.hpp"
#include "sparse/buffered.hpp"
#include "sparse/compressed.hpp"
#include "sparse/plan.hpp"
#include "sparse/spmv.hpp"
#include "test_util.hpp"

namespace memxct::sparse {
namespace {

namespace fs = std::filesystem;

/// fp64-accumulated SpMV reference — the ground truth every compressed
/// kernel's fp32 accumulation is budgeted against.
AlignedVector<real> spmv_fp64(const CsrMatrix& a, std::span<const real> x) {
  AlignedVector<real> y(static_cast<std::size_t>(a.num_rows));
  for (idx_t r = 0; r < a.num_rows; ++r) {
    double acc = 0.0;
    for (nnz_t j = a.displ[r]; j < a.displ[r + 1]; ++j)
      acc += static_cast<double>(a.val[static_cast<std::size_t>(j)]) *
             static_cast<double>(x[static_cast<std::size_t>(
                 a.ind[static_cast<std::size_t>(j)])]);
    y[static_cast<std::size_t>(r)] = static_cast<real>(acc);
  }
  return y;
}

/// Hilbert-ordered projection matrix — the layout whose small column gaps
/// the varint streams are designed around.
CsrMatrix projection_matrix(idx_t angles, idx_t channels) {
  const auto g = geometry::make_geometry(angles, channels);
  const hilbert::Ordering sino(g.sinogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  const hilbert::Ordering tomo(g.tomogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  return geometry::build_projection_matrix(g, sino, tomo);
}

// ---- conversion edge cases ------------------------------------------------

TEST(ValueStorageNames, RoundTrip) {
  ValueStorage v = ValueStorage::Fp32;
  EXPECT_TRUE(parse_value_storage("bf16", v));
  EXPECT_EQ(v, ValueStorage::Bf16);
  EXPECT_TRUE(parse_value_storage("fp16", v));
  EXPECT_EQ(v, ValueStorage::Fp16);
  EXPECT_TRUE(parse_value_storage("fp32", v));
  EXPECT_EQ(v, ValueStorage::Fp32);
  EXPECT_FALSE(parse_value_storage("fp8", v));
  EXPECT_FALSE(parse_value_storage("", v));
  EXPECT_STREQ(to_string(ValueStorage::Bf16), "bf16");
}

TEST(Bf16, ExactValuesAndRounding) {
  // Powers of two and small integers are exactly representable.
  for (const float f : {0.0f, 1.0f, -2.0f, 0.5f, 96.0f, -0.125f})
    EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(f)), f);
  // bf16's ulp at 1.0 is 2^-7 (7 explicit mantissa bits). The midpoint
  // 1 + 2^-8 ties to the even mantissa (1.0); above it rounds up.
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(1.0f + 0x1.0p-8f)), 1.0f);
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(1.0f + 0x1.8p-8f)), 1.0f + 0x1.0p-7f);
  // bf16 keeps fp32's exponent range: tiny fp32 normals survive.
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(0x1.0p-126f)), 0x1.0p-126f);
}

TEST(Bf16, SpecialsPropagate) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(inf)), inf);
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(-inf)), -inf);
  EXPECT_TRUE(std::isnan(
      bf16_to_fp32(fp32_to_bf16(std::numeric_limits<float>::quiet_NaN()))));
  // Signalling payloads are quietened, never truncated into Inf.
  const float snan = std::bit_cast<float>(0x7f800001u);
  EXPECT_TRUE(std::isnan(bf16_to_fp32(fp32_to_bf16(snan))));
  // Rounding never overflows max-normal into a wrong finite value.
  const float big = std::bit_cast<float>(0x7f7fffffu);  // fp32 max
  EXPECT_EQ(bf16_to_fp32(fp32_to_bf16(big)),
            std::numeric_limits<float>::infinity());
}

TEST(Fp16, NormalRangeRoundTrip) {
  for (const float f : {0.0f, 1.0f, -1.0f, 0.5f, 1024.0f, 65504.0f,
                        -65504.0f, 0x1.0p-14f /* smallest normal */})
    EXPECT_EQ(fp16_to_fp32(fp32_to_fp16(f)), f);
  // Values past fp16 max overflow to Inf rather than saturating silently.
  EXPECT_EQ(fp16_to_fp32(fp32_to_fp16(65536.0f)),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(fp16_to_fp32(fp32_to_fp16(-1e30f)),
            -std::numeric_limits<float>::infinity());
}

TEST(Fp16, SubnormalsRoundTripExactly) {
  // Every fp16 subnormal is mant · 2^-24; all 1023 of them (both signs)
  // must decode and re-encode bitwise.
  for (std::uint32_t mant = 1; mant < 0x400u; ++mant) {
    for (const std::uint16_t sign : {std::uint16_t{0}, std::uint16_t{0x8000}}) {
      const auto h = static_cast<std::uint16_t>(sign | mant);
      const float f = fp16_to_fp32(h);
      EXPECT_EQ(fp32_to_fp16(f), h) << "subnormal mant " << mant;
      EXPECT_GT(std::abs(f), 0.0f);
      EXPECT_LT(std::abs(f), 0x1.0p-14f);
    }
  }
  // Smallest subnormal is 2^-24; half of it ties to even -> zero.
  EXPECT_EQ(fp16_to_fp32(fp32_to_fp16(0x1.0p-24f)), 0x1.0p-24f);
  EXPECT_EQ(fp16_to_fp32(fp32_to_fp16(0x1.0p-25f)), 0.0f);
  EXPECT_EQ(fp16_to_fp32(fp32_to_fp16(0x1.8p-25f)), 0x1.0p-24f);
  // Underflow keeps the sign.
  EXPECT_TRUE(std::signbit(fp16_to_fp32(fp32_to_fp16(-0x1.0p-30f))));
}

TEST(Fp16, SpecialsPropagate) {
  EXPECT_TRUE(std::isnan(
      fp16_to_fp32(fp32_to_fp16(std::numeric_limits<float>::quiet_NaN()))));
  const float snan = std::bit_cast<float>(0x7f800001u);
  EXPECT_TRUE(std::isnan(fp16_to_fp32(fp32_to_fp16(snan))));
  EXPECT_EQ(fp16_to_fp32(fp32_to_fp16(std::numeric_limits<float>::infinity())),
            std::numeric_limits<float>::infinity());
}

TEST(Quantize, IsIdempotentBitwise) {
  // Idempotence is what makes the compressed disk cache round-trip: a
  // decompressed (already-quantized) matrix re-quantizes to the same bits.
  Rng rng(17);
  for (const ValueStorage s : {ValueStorage::Bf16, ValueStorage::Fp16}) {
    for (int i = 0; i < 10000; ++i) {
      const auto f = static_cast<real>(rng.uniform(-4.0, 4.0));
      const real once = quantize(f, s);
      const real twice = quantize(once, s);
      EXPECT_EQ(std::bit_cast<std::uint32_t>(once),
                std::bit_cast<std::uint32_t>(twice));
      // And the relative error of one quantization is within the format's
      // unit roundoff (2^-9 bf16, 2^-12 fp16).
      if (std::abs(f) > 1e-3f) {
        const double tol = s == ValueStorage::Bf16 ? 0x1.0p-8 : 0x1.0p-11;
        EXPECT_LT(std::abs(once - f) / std::abs(f), tol);
      }
    }
  }
}

TEST(Quantize, NormalizeNaNMarkersSurvive) {
  // pre::normalize_transmission marks detector faults with NaN for the
  // ingest layer to repair; quantizing a marked sinogram through 16-bit
  // storage must keep every marker detectable.
  const auto g = geometry::make_geometry(4, 8);
  AlignedVector<real> raw(static_cast<std::size_t>(g.sinogram_extent().size()),
                          500.0f);
  AlignedVector<real> flat(8, 1000.0f), dark(8, 10.0f);
  raw[5] = std::numeric_limits<real>::quiet_NaN();   // dead pixel readout
  raw[9] = std::numeric_limits<real>::infinity();    // saturated readout
  const auto p = pre::normalize_transmission(g, raw, flat, dark);
  ASSERT_TRUE(std::isnan(p[5]));
  ASSERT_TRUE(std::isnan(p[9]));
  for (const ValueStorage s : {ValueStorage::Bf16, ValueStorage::Fp16}) {
    EXPECT_TRUE(std::isnan(quantize(p[5], s)));
    EXPECT_TRUE(std::isnan(quantize(p[9], s)));
    // Unmarked samples stay finite and close.
    EXPECT_TRUE(std::isfinite(quantize(p[0], s)));
  }
}

// ---- kernel error budgets vs fp64 reference -------------------------------

struct FamilyCase {
  const char* name;
  ValueStorage storage;
  bool buffered;
  /// Relative L2 budget vs the fp64 reference on the ORIGINAL values.
  double budget;
};

class CompressedFamilies : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(CompressedFamilies, MeetsErrorBudgetAtAllWidths) {
  const auto& param = GetParam();
  const CsrMatrix a = projection_matrix(24, 16);
  const auto n = static_cast<std::size_t>(a.num_cols);
  const auto m = static_cast<std::size_t>(a.num_rows);
  const auto x1 = testutil::random_vector(a.num_cols, 31);
  const auto y64 = spmv_fp64(a, x1);

  CompressedCsr ccsr;
  CompressedBuffered cbuf;
  BufferedMatrix bm;
  if (param.buffered) {
    bm = build_buffered(a, {16, 64});
    cbuf = compress_buffered(bm, param.storage);
  } else {
    ccsr = compress_csr(a, kCsrPartsize, param.storage);
  }

  for (const idx_t k : {idx_t{1}, idx_t{4}, idx_t{8}}) {
    AlignedVector<real> xk(n * static_cast<std::size_t>(k));
    AlignedVector<real> yk(m * static_cast<std::size_t>(k), -7.0f);
    for (std::size_t i = 0; i < n; ++i)
      for (idx_t s = 0; s < k; ++s)
        xk[i * static_cast<std::size_t>(k) + static_cast<std::size_t>(s)] =
            x1[i];
    if (k == 1) {
      if (param.buffered) spmv_cbuffered(cbuf, xk, yk);
      else spmv_ccsr(ccsr, xk, yk);
    } else {
      if (param.buffered) spmm_cbuffered(cbuf, k, xk, yk);
      else spmm_ccsr(ccsr, k, xk, yk);
    }
    for (idx_t s = 0; s < k; ++s) {
      AlignedVector<real> lane(m);
      for (std::size_t r = 0; r < m; ++r)
        lane[r] = yk[r * static_cast<std::size_t>(k) +
                     static_cast<std::size_t>(s)];
      EXPECT_LT(testutil::rel_error(lane, y64), param.budget)
          << param.name << " width " << k << " lane " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, CompressedFamilies,
    ::testing::Values(FamilyCase{"ccsr-fp32", ValueStorage::Fp32, false, 1e-5},
                      FamilyCase{"ccsr-bf16", ValueStorage::Bf16, false, 8e-3},
                      FamilyCase{"ccsr-fp16", ValueStorage::Fp16, false, 1e-3},
                      FamilyCase{"cbuf-fp32", ValueStorage::Fp32, true, 1e-5},
                      FamilyCase{"cbuf-bf16", ValueStorage::Bf16, true, 8e-3},
                      FamilyCase{"cbuf-fp16", ValueStorage::Fp16, true, 1e-3}));

TEST(CompressedKernels, QuantizedReferenceIsFp32Accurate) {
  // Against the fp64 reference on the QUANTIZED values the only remaining
  // deviation is fp32 accumulation — the budget collapses to 1e-5 for
  // every storage, proving the error model is "one-time quantization only".
  const CsrMatrix a = projection_matrix(20, 12);
  const auto x = testutil::random_vector(a.num_cols, 47);
  for (const ValueStorage s : {ValueStorage::Bf16, ValueStorage::Fp16}) {
    const CompressedCsr c = compress_csr(a, kCsrPartsize, s);
    const CsrMatrix aq = decompress_csr(c);
    const auto y64 = spmv_fp64(aq, x);
    AlignedVector<real> y(static_cast<std::size_t>(a.num_rows));
    spmv_ccsr(c, x, y);
    EXPECT_LT(testutil::rel_error(y, y64), 1e-5) << to_string(s);
  }
}

TEST(CompressedKernels, SpmmLanesBitwiseMatchSpmv) {
  // Contract: lane s of a width-k block apply is bitwise the single-RHS
  // kernel on lane s's input — same accumulation order, contraction off.
  const CsrMatrix a = projection_matrix(24, 16);
  const auto n = static_cast<std::size_t>(a.num_cols);
  const auto m = static_cast<std::size_t>(a.num_rows);
  const CompressedCsr ccsr = compress_csr(a, kCsrPartsize, ValueStorage::Bf16);
  const BufferedMatrix bm = build_buffered(a, {16, 64});
  const CompressedBuffered cbuf = compress_buffered(bm, ValueStorage::Bf16);

  for (const idx_t k : {idx_t{4}, idx_t{8}}) {
    AlignedVector<real> xk(n * static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < n; ++i)
      for (idx_t s = 0; s < k; ++s)
        xk[i * static_cast<std::size_t>(k) + static_cast<std::size_t>(s)] =
            0.25f + static_cast<real>((i * 31 + static_cast<std::size_t>(s) * 7)
                                      % 23) * 0.0625f;
    AlignedVector<real> yk_csr(m * static_cast<std::size_t>(k));
    AlignedVector<real> yk_buf(m * static_cast<std::size_t>(k));
    spmm_ccsr(ccsr, k, xk, yk_csr);
    spmm_cbuffered(cbuf, k, xk, yk_buf);
    for (idx_t s = 0; s < k; ++s) {
      AlignedVector<real> x1(n), y1_csr(m), y1_buf(m);
      for (std::size_t i = 0; i < n; ++i)
        x1[i] = xk[i * static_cast<std::size_t>(k) +
                   static_cast<std::size_t>(s)];
      spmv_ccsr(ccsr, x1, y1_csr);
      spmv_cbuffered(cbuf, x1, y1_buf);
      for (std::size_t r = 0; r < m; ++r) {
        const std::size_t at =
            r * static_cast<std::size_t>(k) + static_cast<std::size_t>(s);
        EXPECT_EQ(std::memcmp(&yk_csr[at], &y1_csr[r], sizeof(real)), 0)
            << "ccsr width " << k << " lane " << s << " row " << r;
        EXPECT_EQ(std::memcmp(&yk_buf[at], &y1_buf[r], sizeof(real)), 0)
            << "cbuffered width " << k << " lane " << s << " row " << r;
      }
    }
  }
}

TEST(CompressedKernels, PlannedMatchesDynamicBitwise) {
  // Partitions own disjoint row ranges and rows accumulate in stream order,
  // so the schedule cannot change any bit of the output.
  const CsrMatrix a = projection_matrix(24, 16);
  const CompressedCsr ccsr = compress_csr(a, kCsrPartsize, ValueStorage::Fp16);
  const BufferedMatrix bm = build_buffered(a, {16, 64});
  const CompressedBuffered cbuf = compress_buffered(bm, ValueStorage::Fp16);
  const auto x = testutil::random_vector(a.num_cols, 53);
  const auto m = static_cast<std::size_t>(a.num_rows);
  const int slots = 3;

  const auto csr_plan = ApplyPlan::build(partition_nnz(ccsr), slots);
  AlignedVector<real> y_dyn(m), y_plan(m, -1.0f);
  spmv_ccsr(ccsr, x, y_dyn);
  spmv_ccsr_planned(ccsr, csr_plan, x, y_plan);
  EXPECT_EQ(std::memcmp(y_dyn.data(), y_plan.data(), m * sizeof(real)), 0);

  const auto buf_plan = ApplyPlan::build(partition_nnz(cbuf), slots);
  Workspace ws(slots, cbuf.config.buffsize, cbuf.config.partsize);
  AlignedVector<real> z_dyn(m), z_plan(m, -1.0f);
  spmv_cbuffered(cbuf, x, z_dyn);
  spmv_cbuffered_planned(cbuf, buf_plan, ws, x, z_plan);
  EXPECT_EQ(std::memcmp(z_dyn.data(), z_plan.data(), m * sizeof(real)), 0);
}

TEST(CompressedKernels, MeasuredBytesPerFmaBeatFp32ByHalf) {
  // The acceptance bar: bf16 + varint must cut matrix B/FMA by >= 1.5x vs
  // the fp32 layouts on the same Hilbert-ordered geometry.
  const CsrMatrix a = projection_matrix(48, 32);
  const CompressedCsr ccsr = compress_csr(a, kCsrPartsize, ValueStorage::Bf16);
  const auto csr_fp32 = csr_work(a).bytes_per_fma();          // 8
  const auto csr_bf16 = ccsr_work(ccsr).bytes_per_fma();
  EXPECT_GE(csr_fp32 / csr_bf16, 1.5) << "measured " << csr_bf16;

  const BufferedMatrix bm = build_buffered(a, {64, 256});
  const CompressedBuffered cbuf = compress_buffered(bm, ValueStorage::Bf16);
  const auto buf_fp32 = buffered_work(bm).bytes_per_fma();    // 6
  const auto buf_bf16 = cbuffered_work(cbuf).bytes_per_fma();
  EXPECT_GE(buf_fp32 / buf_bf16, 1.5) << "measured " << buf_bf16;
}

}  // namespace
}  // namespace memxct::sparse

// ---- operator- and pipeline-level tests -----------------------------------

namespace memxct::core {
namespace {

namespace fs = std::filesystem;

sparse::CsrMatrix small_projection() {
  const auto g = geometry::make_geometry(16, 20);
  const hilbert::Ordering sino(g.sinogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  const hilbert::Ordering tomo(g.tomogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  return geometry::build_projection_matrix(g, sino, tomo);
}

TEST(CompressedOperator, AdjointAndLinearityHold) {
  // <Ax, y> == <x, A'y> exactly characterizes that forward and transpose
  // use the SAME quantized matrix — quantization must not break adjointness
  // (CGLS relies on it), only perturb the operator as a whole.
  for (const KernelKind kind : {KernelKind::Baseline, KernelKind::Buffered}) {
    for (const auto storage :
         {sparse::ValueStorage::Bf16, sparse::ValueStorage::Fp16}) {
      auto a = small_projection();
      const MemXCTOperator op(std::move(a), kind, {16, 64}, 64,
                              ScheduleKind::StaticPlan, storage);
      EXPECT_EQ(op.precision(), storage);
      const auto x = testutil::random_vector(op.num_cols(), 61);
      const auto y = testutil::random_vector(op.num_rows(), 62);
      AlignedVector<real> ax(static_cast<std::size_t>(op.num_rows()));
      AlignedVector<real> aty(static_cast<std::size_t>(op.num_cols()));
      op.apply(x, ax);
      op.apply_transpose(y, aty);
      double axy = 0.0, xaty = 0.0;
      for (std::size_t i = 0; i < ax.size(); ++i)
        axy += static_cast<double>(ax[i]) * y[i];
      for (std::size_t i = 0; i < aty.size(); ++i)
        xaty += static_cast<double>(x[i]) * aty[i];
      EXPECT_NEAR(axy, xaty, 1e-4 * std::max(std::abs(axy), 1.0));

      // Linearity: A(x1 + 2·x2) == A·x1 + 2·A·x2 to fp32 rounding.
      const auto x2 = testutil::random_vector(op.num_cols(), 63);
      AlignedVector<real> combo(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) combo[i] = x[i] + 2.0f * x2[i];
      AlignedVector<real> a_combo(ax.size()), ax2(ax.size());
      op.apply(combo, a_combo);
      op.apply(x2, ax2);
      AlignedVector<real> expected(ax.size());
      for (std::size_t i = 0; i < ax.size(); ++i)
        expected[i] = ax[i] + 2.0f * ax2[i];
      EXPECT_LT(testutil::rel_error(a_combo, expected), 1e-5);
    }
  }
}

TEST(CompressedOperator, BlockApplyMatchesSingleApply) {
  auto a = small_projection();
  const MemXCTOperator op(std::move(a), KernelKind::Buffered, {16, 64}, 64,
                          ScheduleKind::StaticPlan, sparse::ValueStorage::Bf16);
  const auto m = static_cast<std::size_t>(op.num_rows());
  const auto n = static_cast<std::size_t>(op.num_cols());
  for (const idx_t k : {idx_t{4}, idx_t{8}}) {
    AlignedVector<real> x(n * static_cast<std::size_t>(k));
    for (idx_t s = 0; s < k; ++s) {
      const auto xs = testutil::random_vector(op.num_cols(),
                                              70 + static_cast<std::uint64_t>(s));
      std::copy(xs.begin(), xs.end(),
                x.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(s) * n));
    }
    AlignedVector<real> y(m * static_cast<std::size_t>(k), -3.0f);
    auto ws = op.make_block_workspace(k);
    op.apply_block(x, y, ws);
    for (idx_t s = 0; s < k; ++s) {
      AlignedVector<real> y1(m);
      op.apply({x.data() + static_cast<std::size_t>(s) * n, n}, y1);
      EXPECT_EQ(std::memcmp(y.data() + static_cast<std::size_t>(s) * m,
                            y1.data(), m * sizeof(real)),
                0)
          << "width " << k << " slice " << s;
    }
  }
}

TEST(CompressedOperator, RejectsUnsupportedKernels) {
  for (const KernelKind kind : {KernelKind::EllBlock, KernelKind::Library}) {
    auto a = small_projection();
    EXPECT_THROW(MemXCTOperator(std::move(a), kind, {16, 64}, 64,
                                ScheduleKind::StaticPlan,
                                sparse::ValueStorage::Bf16),
                 InvalidArgument);
  }
}

TEST(CompressedOperator, ReportsSmallerFootprint) {
  auto a1 = small_projection();
  auto a2 = small_projection();
  const MemXCTOperator fp32(std::move(a1), KernelKind::Buffered, {16, 64});
  const MemXCTOperator bf16(std::move(a2), KernelKind::Buffered, {16, 64}, 64,
                            ScheduleKind::StaticPlan,
                            sparse::ValueStorage::Bf16);
  EXPECT_LT(bf16.regular_bytes(), fp32.regular_bytes());
  EXPECT_LT(bf16.forward_work().bytes_per_fma(),
            fp32.forward_work().bytes_per_fma());
}

double psnr(std::span<const real> test, std::span<const real> ref) {
  double peak = 0.0, mse = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    peak = std::max(peak, static_cast<double>(std::abs(ref[i])));
    const double d = static_cast<double>(test[i]) - ref[i];
    mse += d * d;
  }
  mse /= static_cast<double>(ref.size());
  return 10.0 * std::log10(peak * peak / std::max(mse, 1e-300));
}

TEST(CompressedReconstruction, PsnrBudgetsVsFp32) {
  const auto spec = phantom::dataset("ADS1").scaled_by(8);
  const auto data = phantom::generate(spec, 7);
  Config base;
  base.iterations = 15;
  const Reconstructor fp32(data.geometry, base);
  const auto ref = fp32.reconstruct(data.sinogram);

  struct Budget { sparse::ValueStorage storage; double min_db; };
  for (const auto& b : {Budget{sparse::ValueStorage::Bf16, 28.0},
                        Budget{sparse::ValueStorage::Fp16, 38.0}}) {
    Config c = base;
    c.precision = b.storage;
    const Reconstructor recon(data.geometry, c);
    const auto result = recon.reconstruct(data.sinogram);
    const double db = psnr(result.image, ref.image);
    EXPECT_GT(db, b.min_db) << sparse::to_string(b.storage);
    // And it still reconstructs the phantom, not just "matches fp32".
    const std::vector<real> zeros(data.image.size(), 0.0f);
    EXPECT_LT(phantom::rmse(result.image, data.image),
              0.5 * phantom::rmse(zeros, data.image));
  }
}

/// Scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_("/tmp/memxct_test_" + name + "_" + std::to_string(::getpid())) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
 private:
  std::string path_;
};

TEST(CompressedCache, RoundTripsBitwiseAndSurvivesCorruption) {
  ScratchDir dir("ccache");
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 9);
  Config config;
  config.iterations = 5;
  config.precision = sparse::ValueStorage::Bf16;
  config.cache_dir = dir.path();

  const Reconstructor first(data.geometry, config);
  EXPECT_FALSE(first.preprocess_report().cache_hit);
  const auto miss = first.reconstruct(data.sinogram);

  const Reconstructor second(data.geometry, config);
  EXPECT_TRUE(second.preprocess_report().cache_hit);
  const auto hit = second.reconstruct(data.sinogram);

  // Quantization idempotence: the operator rebuilt from the quantized
  // cache is bitwise the operator built from scratch.
  ASSERT_EQ(miss.image.size(), hit.image.size());
  EXPECT_EQ(std::memcmp(miss.image.data(), hit.image.data(),
                        miss.image.size() * sizeof(real)),
            0);

  // The compressed cache keys a distinct file from the fp32 cache.
  bool saw_ccsr = false;
  for (const auto& e : fs::directory_iterator(dir.path()))
    if (e.path().string().find("-vbf16.ccsr") != std::string::npos) {
      saw_ccsr = true;
      // Flip one payload byte: the next build must detect the damage and
      // fall back to retracing instead of crashing or loading garbage.
      std::fstream f(e.path(), std::ios::in | std::ios::out |
                                    std::ios::binary);
      f.seekp(-1, std::ios::end);
      char c;
      f.seekg(-1, std::ios::end);
      f.get(c);
      f.seekp(-1, std::ios::end);
      f.put(static_cast<char>(c ^ 0x5a));
    }
  EXPECT_TRUE(saw_ccsr);

  const Reconstructor third(data.geometry, config);
  EXPECT_FALSE(third.preprocess_report().cache_hit);  // graceful rebuild
  const auto rebuilt = third.reconstruct(data.sinogram);
  EXPECT_EQ(std::memcmp(miss.image.data(), rebuilt.image.data(),
                        miss.image.size() * sizeof(real)),
            0);
}

TEST(CompressedCache, CheckedIoRoundTripsAndRejectsCorruption) {
  ScratchDir dir("ccsrio");
  const sparse::CsrMatrix a = testutil::random_csr(40, 60, 0.1, 21);
  const auto c = sparse::compress_csr(a, 8, sparse::ValueStorage::Fp16);
  const std::string path = dir.path() + "/op.ccsr";
  resil::save_compressed_csr_checked(path, c);

  const auto back = resil::load_compressed_csr_checked(path);
  EXPECT_EQ(back.num_rows, c.num_rows);
  EXPECT_EQ(back.partsize, c.partsize);
  EXPECT_EQ(back.storage, c.storage);
  ASSERT_EQ(back.ind_bytes.size(), c.ind_bytes.size());
  EXPECT_EQ(std::memcmp(back.ind_bytes.data(), c.ind_bytes.data(),
                        c.ind_bytes.size()),
            0);
  ASSERT_EQ(back.val16.size(), c.val16.size());
  EXPECT_EQ(std::memcmp(back.val16.data(), c.val16.data(),
                        c.val16.size() * sizeof(std::uint16_t)),
            0);

  // Kind confusion is rejected: a compressed payload is not a CsrMatrix.
  EXPECT_THROW((void)resil::load_csr_checked(path), IoError);

  // Any flipped payload byte fails the CRC.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(48, std::ios::beg);
  f.put('\x7f');
  f.close();
  EXPECT_THROW((void)resil::load_compressed_csr_checked(path), IoError);
}

TEST(CompressedConfig, DistributedPathRejectsReducedPrecision) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 4);
  Config config;
  config.iterations = 2;
  config.num_ranks = 2;
  config.precision = sparse::ValueStorage::Bf16;
  EXPECT_THROW(Reconstructor(data.geometry, config), InvalidArgument);
}

TEST(CompressedConfig, OpkeyDistinguishesPrecision) {
  const auto g = geometry::make_geometry(8, 8);
  Config a, b;
  b.precision = sparse::ValueStorage::Bf16;
  EXPECT_NE(operator_key(g, a).text, operator_key(g, b).text);
  EXPECT_NE(operator_key(g, a).hash, operator_key(g, b).hash);
  EXPECT_EQ(operator_config(b).precision, sparse::ValueStorage::Bf16);
}

}  // namespace
}  // namespace memxct::core
