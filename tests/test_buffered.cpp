// Tests for the multi-stage input-buffered SpMV (Listing 3, Section 3.3).
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <set>

#include "sparse/buffered.hpp"
#include "test_util.hpp"

namespace memxct::sparse {
namespace {

struct BufferedCase {
  idx_t rows, cols;
  double density;
  BufferConfig config;
};

class BufferedSweep : public ::testing::TestWithParam<BufferedCase> {};

TEST_P(BufferedSweep, MatchesReference) {
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 41);
  const BufferedMatrix bm = build_buffered(a, param.config);
  const auto x = testutil::random_vector(param.cols, 42);
  AlignedVector<real> expected(static_cast<std::size_t>(param.rows));
  AlignedVector<real> actual(static_cast<std::size_t>(param.rows), -3.0f);
  spmv_reference(a, x, expected);
  spmv_buffered(bm, x, actual);
  EXPECT_LT(testutil::rel_error(actual, expected), 1e-5);
}

TEST_P(BufferedSweep, StructureIsValid) {
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 43);
  const BufferedMatrix bm = build_buffered(a, param.config);
  EXPECT_NO_THROW(bm.validate());
  EXPECT_EQ(bm.nnz(), a.nnz());
  // Every stage respects the 16-bit buffer bound.
  for (idx_t s = 0; s < bm.num_stages(); ++s)
    EXPECT_LE(bm.stagenz[static_cast<std::size_t>(s)], bm.config.buffsize);
}

TEST_P(BufferedSweep, MapCoversExactlyPartitionFootprints) {
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 45);
  const BufferedMatrix bm = build_buffered(a, param.config);
  // For each partition, the union of its stage maps must equal the set of
  // distinct columns its rows touch.
  for (idx_t p = 0; p < bm.num_partitions(); ++p) {
    std::set<idx_t> expected_cols;
    const idx_t r0 = p * bm.config.partsize;
    const idx_t r1 = std::min<idx_t>(r0 + bm.config.partsize, a.num_rows);
    for (idx_t r = r0; r < r1; ++r)
      for (nnz_t k = a.displ[r]; k < a.displ[r + 1]; ++k)
        expected_cols.insert(a.ind[k]);
    std::set<idx_t> staged_cols;
    for (idx_t s = bm.partdispl[static_cast<std::size_t>(p)];
         s < bm.partdispl[static_cast<std::size_t>(p) + 1]; ++s)
      for (nnz_t m = bm.stagedispl[static_cast<std::size_t>(s)];
           m < bm.stagedispl[static_cast<std::size_t>(s) + 1]; ++m)
        staged_cols.insert(bm.map[static_cast<std::size_t>(m)]);
    EXPECT_EQ(staged_cols, expected_cols) << "partition " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BufferedSweep,
    ::testing::Values(
        BufferedCase{1, 1, 1.0, {1, 1}},
        BufferedCase{16, 16, 0.5, {4, 8}},
        BufferedCase{100, 80, 0.1, {128, 4096}},
        BufferedCase{100, 80, 0.1, {8, 16}},   // many small stages
        BufferedCase{63, 200, 0.2, {16, 32}},  // footprint > buffer
        BufferedCase{257, 129, 0.05, {32, 64}},
        BufferedCase{512, 300, 0.02, {128, 256}},
        BufferedCase{40, 40, 0.0, {16, 64}},   // empty matrix
        BufferedCase{10, 70000, 0.9, {4, 65536}}));  // max buffsize bound

TEST(Buffered, MultipleStagesWhenFootprintExceedsBuffer) {
  // A partition touching 100 distinct columns with a 32-entry buffer needs
  // ceil(100/32) = 4 stages.
  CsrBuilder b(2, 100);
  std::vector<std::pair<idx_t, real>> row;
  for (idx_t c = 0; c < 100; ++c) row.emplace_back(c, 1.0f);
  b.set_row(0, row);
  b.set_row(1, row);
  const CsrMatrix a = b.assemble();
  const BufferedMatrix bm = build_buffered(a, {2, 32});
  EXPECT_EQ(bm.num_partitions(), 1);
  EXPECT_EQ(bm.num_stages(), 4);
  EXPECT_EQ(bm.total_staged(), 100);  // distinct columns staged once
}

TEST(Buffered, SharedFootprintStagedOnce) {
  // Rows of one partition sharing columns stage them once — the data-reuse
  // benefit of Section 3.3.1. Two identical rows with 10 columns stage 10
  // words, not 20.
  CsrBuilder b(2, 50);
  std::vector<std::pair<idx_t, real>> row;
  for (idx_t c = 0; c < 10; ++c) row.emplace_back(c * 5, 2.0f);
  b.set_row(0, row);
  b.set_row(1, row);
  const BufferedMatrix bm = build_buffered(b.assemble(), {2, 64});
  EXPECT_EQ(bm.total_staged(), 10);
}

TEST(Buffered, SixteenBitIndexBound) {
  EXPECT_THROW(build_buffered(testutil::random_csr(4, 4, 1.0, 1), {4, 65537}),
               InvariantError);
  EXPECT_THROW(build_buffered(testutil::random_csr(4, 4, 1.0, 1), {0, 16}),
               InvariantError);
  EXPECT_THROW(build_buffered(testutil::random_csr(4, 4, 1.0, 1), {4, 0}),
               InvariantError);
}

TEST(Buffered, BandwidthAccountingUsesTwoByteIndices) {
  const CsrMatrix a = testutil::random_csr(64, 64, 0.2, 47);
  const BufferedMatrix bm = build_buffered(a, {16, 128});
  const auto work = buffered_work(bm);
  EXPECT_EQ(work.nnz, a.nnz());
  EXPECT_DOUBLE_EQ(work.bytes_per_fma(), 6.0);  // 2 B index + 4 B value
  EXPECT_EQ(work.staged_words, bm.total_staged());
  // Regular bytes = 6·nnz + 8·staged (map read + gathered value).
  EXPECT_DOUBLE_EQ(work.regular_bytes(),
                   6.0 * static_cast<double>(a.nnz()) +
                       8.0 * static_cast<double>(bm.total_staged()));
}

TEST(Buffered, LastPartialPartitionHandled) {
  // num_rows not divisible by partsize: trailing rows must still be exact.
  const CsrMatrix a = testutil::random_csr(13, 30, 0.4, 49);
  const BufferedMatrix bm = build_buffered(a, {8, 16});
  const auto x = testutil::random_vector(30, 50);
  AlignedVector<real> expected(13), actual(13);
  spmv_reference(a, x, expected);
  spmv_buffered(bm, x, actual);
  EXPECT_LT(testutil::rel_error(actual, expected), 1e-5);
}

TEST(Buffered, HilbertLikeBandedMatrixFewStages) {
  // Banded (compact-footprint) matrices — what pseudo-Hilbert ordering
  // produces — need few stages per partition.
  const CsrMatrix a = testutil::banded_csr(512, 512, 16, 51);
  const BufferedMatrix bm = build_buffered(a, {64, 256});
  // Each 64-row partition touches ≲ 64+2*16 distinct columns < 256.
  EXPECT_EQ(bm.num_stages(), bm.num_partitions());
}

}  // namespace
}  // namespace memxct::sparse
