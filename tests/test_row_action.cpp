// Tests for the row/coordinate-action solvers (SGD / ICD, Section 3.5.2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "solve/cgls.hpp"
#include "solve/icd.hpp"
#include "solve/sgd.hpp"
#include "solve/vector_ops.hpp"
#include "sparse/spmv.hpp"
#include "sparse/transpose.hpp"
#include "test_util.hpp"

namespace memxct::solve {
namespace {

struct System {
  sparse::CsrMatrix a;
  sparse::CsrMatrix at;
  AlignedVector<real> x_true;
  AlignedVector<real> y;
};

System consistent_system(idx_t rows, idx_t cols, std::uint64_t seed) {
  System s;
  // Diagonal-boosted random matrix: well conditioned, full column rank.
  Rng rng(seed);
  sparse::CsrBuilder b(rows, cols);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < rows; ++r) {
    entries.clear();
    for (idx_t c = 0; c < cols; ++c)
      if (rng.uniform() < 0.15)
        entries.emplace_back(c, static_cast<real>(rng.uniform(-0.3, 0.3)));
    if (r < cols) entries.emplace_back(r, 2.0f);
    b.set_row(r, entries);
  }
  s.a = b.assemble();
  s.at = sparse::transpose(s.a);
  s.x_true = testutil::random_vector(cols, seed + 1);
  s.y.resize(static_cast<std::size_t>(rows));
  sparse::spmv_reference(s.a, s.x_true, s.y);
  return s;
}

double residual_norm(const System& s, std::span<const real> x) {
  AlignedVector<real> ax(static_cast<std::size_t>(s.a.num_rows));
  sparse::spmv_reference(s.a, x, ax);
  AlignedVector<real> r(ax.size());
  subtract(s.y, ax, r);
  return norm2(r);
}

TEST(Sgd, ConvergesOnConsistentSystem) {
  const auto s = consistent_system(80, 50, 41);
  const auto result = sgd(s.a, s.y, {.epochs = 40});
  EXPECT_LT(testutil::rel_error(result.x, s.x_true), 0.05);
}

TEST(Sgd, ResidualDecreasesOverEpochs) {
  const auto s = consistent_system(60, 40, 43);
  const auto result = sgd(s.a, s.y, {.epochs = 20});
  ASSERT_EQ(result.history.size(), 20u);
  EXPECT_LT(result.history.back().residual_norm,
            0.2 * result.history.front().residual_norm);
}

TEST(Sgd, DeterministicBySeed) {
  const auto s = consistent_system(30, 20, 45);
  const auto r1 = sgd(s.a, s.y, {.epochs = 3, .seed = 7});
  const auto r2 = sgd(s.a, s.y, {.epochs = 3, .seed = 7});
  const auto r3 = sgd(s.a, s.y, {.epochs = 3, .seed = 8});
  EXPECT_EQ(r1.x, r2.x);
  EXPECT_NE(r1.x, r3.x);
}

TEST(Sgd, HandlesEmptyRows) {
  sparse::CsrBuilder b(4, 3);
  const std::vector<std::pair<idx_t, real>> row{{0, 1.0f}, {2, 1.0f}};
  b.set_row(1, row);
  const auto a = b.assemble();
  const AlignedVector<real> y{0.0f, 2.0f, 0.0f, 0.0f};
  const auto result = sgd(a, y, {.epochs = 5});
  for (const real v : result.x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Sgd, RejectsBadRelaxation) {
  const auto s = consistent_system(10, 5, 47);
  EXPECT_THROW((void)sgd(s.a, s.y, {.relaxation = 2.5f}), InvariantError);
  EXPECT_THROW((void)sgd(s.a, s.y, {.relaxation = 0.0f}), InvariantError);
}

TEST(Icd, ConvergesOnConsistentSystem) {
  const auto s = consistent_system(80, 50, 51);
  const auto result = icd(s.a, s.at, s.y, {.sweeps = 40});
  EXPECT_LT(testutil::rel_error(result.x, s.x_true), 0.05);
}

TEST(Icd, ResidualIsMonotonePerSweep) {
  // Exact coordinate minimization never increases the objective.
  const auto s = consistent_system(60, 40, 53);
  const auto result = icd(s.a, s.at, s.y, {.sweeps = 15});
  for (std::size_t i = 1; i < result.history.size(); ++i)
    EXPECT_LE(result.history[i].residual_norm,
              result.history[i - 1].residual_norm * (1.0 + 1e-5));
}

TEST(Icd, MaintainedResidualMatchesRecomputed) {
  // The incremental residual update must not drift from the true residual.
  const auto s = consistent_system(50, 30, 55);
  const auto result = icd(s.a, s.at, s.y, {.sweeps = 10});
  EXPECT_NEAR(result.history.back().residual_norm, residual_norm(s, result.x),
              1e-2 + 1e-3 * residual_norm(s, result.x));
}

TEST(Icd, RejectsMismatchedTranspose) {
  const auto s = consistent_system(20, 10, 57);
  const auto wrong = testutil::random_csr(10, 20, 0.2, 58);
  EXPECT_THROW((void)icd(s.a, wrong, s.y, {}), InvariantError);
}

TEST(SolverFamily, CgConvergesInFewestPasses) {
  // All three schemes cost ~O(nnz) per pass; CG needs the fewest passes —
  // the paper's rationale for choosing CG (Section 3.5.2).
  const auto s = consistent_system(100, 64, 59);

  class Op final : public LinearOperator {
   public:
    explicit Op(const System& sys) : s_(sys) {}
    idx_t num_rows() const override { return s_.a.num_rows; }
    idx_t num_cols() const override { return s_.a.num_cols; }
    void apply(std::span<const real> x, std::span<real> y) const override {
      sparse::spmv_csr(s_.a, x, y);
    }
    void apply_transpose(std::span<const real> y,
                         std::span<real> x) const override {
      sparse::spmv_csr(s_.at, y, x);
    }

   private:
    const System& s_;
  } op(s);

  const double target = 0.01 * norm2(s.y);
  const auto passes_to = [&](const std::vector<IterationRecord>& history) {
    for (const auto& rec : history)
      if (rec.residual_norm < target) return rec.iteration;
    return 10000;
  };
  const auto cg = cgls(op, s.y, {.max_iterations = 60});
  const auto k = sgd(s.a, s.y, {.epochs = 60});
  const auto cd = icd(s.a, s.at, s.y, {.sweeps = 60});
  const int cg_passes = passes_to(cg.history);
  EXPECT_LE(cg_passes, passes_to(k.history));
  EXPECT_LE(cg_passes, passes_to(cd.history));
  EXPECT_LT(cg_passes, 10000);
}

}  // namespace
}  // namespace memxct::solve
