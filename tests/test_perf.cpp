// Tests for timers, work accounting, machine models, and the network model.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <chrono>

#include "perf/counters.hpp"
#include "perf/machine_model.hpp"
#include "perf/network_model.hpp"
#include "perf/timer.hpp"

namespace memxct::perf {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  // Busy-wait until the steady clock must have advanced at least one tick.
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() == start) {
  }
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GT(t.milliseconds(), 0.0);
}

TEST(Stopwatch, AccumulatesLaps) {
  Stopwatch sw;
  sw.start();
  sw.stop();
  sw.start();
  sw.stop();
  EXPECT_EQ(sw.laps(), 2);
  EXPECT_GE(sw.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(sw.mean_seconds() * 2, sw.total_seconds());
  sw.clear();
  EXPECT_EQ(sw.laps(), 0);
}

TEST(KernelWork, GflopsAndBandwidth) {
  KernelWork w;
  w.nnz = 1'000'000;
  EXPECT_DOUBLE_EQ(w.flops(), 2e6);
  EXPECT_DOUBLE_EQ(w.gflops(0.001), 2.0);
  // Baseline: 8 B per FMA (4 B index + 4 B value defaults).
  EXPECT_DOUBLE_EQ(w.bytes_per_fma(), RegularBytes::kBaseline);
  EXPECT_DOUBLE_EQ(w.regular_bytes(), 8e6);
  w.index_bytes_per_fma = 2.0;  // buffered: 16-bit buffer indices
  w.staged_words = 100'000;
  EXPECT_DOUBLE_EQ(w.bytes_per_fma(), RegularBytes::kBuffered);
  EXPECT_DOUBLE_EQ(w.regular_bytes(), 6e6 + 8e5);
}

TEST(KernelWork, CompressedWidthsLowerTraffic) {
  KernelWork w;
  w.nnz = 1'000'000;
  w.staged_words = 100'000;
  w.value_bytes_per_fma = 2.0;   // bf16 storage
  w.index_bytes_per_fma = 1.25;  // measured varint average
  w.staged_index_bytes = 1.5;    // measured varint average
  EXPECT_DOUBLE_EQ(w.bytes_per_fma(), 3.25);
  EXPECT_DOUBLE_EQ(w.regular_bytes(), 3.25e6 + 1e5 * 5.5);
  // Matrix stream and map reads amortize across k lanes; gathers do not.
  EXPECT_DOUBLE_EQ(w.regular_bytes_at_width(4),
                   (3.25e6 + 1.5e5) / 4.0 + 4e5);
}

TEST(MachineModel, Table2MachinesPresent) {
  const auto& machines = table2_machines();
  ASSERT_GE(machines.size(), 5u);
  EXPECT_EQ(machine("Theta").device, DeviceKind::KNL);
  EXPECT_EQ(machine("Theta").nodes, 4392);
  EXPECT_DOUBLE_EQ(machine("Theta").mem_bw_gbs, 400.0);
  EXPECT_EQ(machine("BlueWaters").device, DeviceKind::K20X);
  EXPECT_EQ(machine("DGX-1").devices_per_node, 8);
  EXPECT_DOUBLE_EQ(machine("DGX-1").mem_bw_gbs, 900.0);
  EXPECT_THROW((void)machine("Summit"), InvalidArgument);
}

TEST(MachineModel, EfficienciesAreSaneFractions) {
  for (const auto device : {DeviceKind::KNL, DeviceKind::K80, DeviceKind::P100,
                            DeviceKind::V100, DeviceKind::HostCPU}) {
    for (const auto level :
         {OptLevel::Baseline, OptLevel::HilbertOrdered,
          OptLevel::MultiStageBuffered}) {
      const double e = bandwidth_efficiency(device, level);
      EXPECT_GT(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
    // Optimizations never lower stream efficiency below baseline.
    EXPECT_GE(bandwidth_efficiency(device, OptLevel::HilbertOrdered),
              bandwidth_efficiency(device, OptLevel::Baseline));
  }
}

TEST(MachineModel, LatencyPenaltyDecreasesWithMissRate) {
  EXPECT_DOUBLE_EQ(latency_penalty(DeviceKind::KNL, 0.0), 1.0);
  EXPECT_LT(latency_penalty(DeviceKind::KNL, 0.5),
            latency_penalty(DeviceKind::KNL, 0.1));
  // GPUs hide latency better than KNL (Section 4.2.1's observation).
  EXPECT_GT(latency_penalty(DeviceKind::V100, 0.5),
            latency_penalty(DeviceKind::KNL, 0.5));
}

TEST(MachineModel, ModeledKernelTimeOrderings) {
  KernelWork w;
  w.nnz = 100'000'000;
  const double v100 = modeled_kernel_seconds(
      machine("DGX-1"), w, OptLevel::HilbertOrdered, true);
  const double k20x = modeled_kernel_seconds(
      machine("BlueWaters"), w, OptLevel::HilbertOrdered, true);
  EXPECT_LT(v100, k20x);  // faster memory wins
  // Spilling out of MCDRAM slows KNL down.
  const double mcdram = modeled_kernel_seconds(machine("Theta"), w,
                                               OptLevel::HilbertOrdered, true);
  const double ddr = modeled_kernel_seconds(machine("Theta"), w,
                                            OptLevel::HilbertOrdered, false);
  EXPECT_LT(mcdram, ddr);
  // Baseline with high miss rate is slower than ordered.
  const double base = modeled_kernel_seconds(machine("Theta"), w,
                                             OptLevel::Baseline, true, 0.5);
  EXPECT_GT(base, mcdram);
}

TEST(NetworkModel, AlltoallvScalesWithBytesAndMessages) {
  const auto& theta = machine("Theta");
  CommStats small{1000, 1000, 4, 4};
  CommStats big{1'000'000'000, 1'000'000'000, 4, 4};
  CommStats many{1000, 1000, 4000, 4000};
  EXPECT_LT(alltoallv_seconds(theta, small), alltoallv_seconds(theta, big));
  EXPECT_LT(alltoallv_seconds(theta, small), alltoallv_seconds(theta, many));
}

TEST(NetworkModel, AllreduceGrowsWithLogRanks) {
  const auto& theta = machine("Theta");
  EXPECT_DOUBLE_EQ(allreduce_seconds(theta, 1 << 20, 1), 0.0);
  const double p2 = allreduce_seconds(theta, 1 << 20, 2);
  const double p16 = allreduce_seconds(theta, 1 << 20, 16);
  const double p1024 = allreduce_seconds(theta, 1 << 20, 1024);
  EXPECT_LT(p2, p16);
  EXPECT_LT(p16, p1024);
  // Latency term grows with log2(P): 1024 ranks = 10 rounds vs 4 rounds.
  EXPECT_GT(p1024 - p16, 5.0 * theta.net_latency_s);
}

TEST(CommStats, Accumulation) {
  CommStats a{10, 20, 1, 2};
  const CommStats b{5, 5, 1, 1};
  a += b;
  EXPECT_EQ(a.bytes_sent, 15);
  EXPECT_EQ(a.bytes_received, 25);
  EXPECT_EQ(a.messages_sent, 2);
  EXPECT_EQ(a.messages_received, 3);
}

}  // namespace
}  // namespace memxct::perf
