// Chaos harness for the serving stack: seeded fault storms, the quality
// ladder, retry/backoff, the watchdog, the disk-tier circuit breaker, and
// cancellation corner cases.
//
// The invariants under test are the PR's acceptance criteria:
//   * no deadlock — every storm run completes;
//   * no request is lost: each reaches exactly one typed terminal status;
//   * every Degraded result stays within its rung's error budget
//     (fp32 rungs bitwise-equal to a direct solve of the rung config, bf16
//     rungs within the PR 6 PSNR budget vs an fp32 twin);
//   * two same-seed storms produce bitwise-identical statuses and images.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/reconstructor.hpp"
#include "phantom/phantom.hpp"
#include "resil/checkpoint.hpp"
#include "resil/fault.hpp"
#include "serve/server.hpp"

namespace {

namespace fs = std::filesystem;
using namespace memxct;

struct ChaosFixture {
  geometry::Geometry geom = geometry::make_geometry(24, 16);
  AlignedVector<real> sino;
  core::Config config;
};

ChaosFixture make_fixture(core::Config config = {}) {
  ChaosFixture f;
  config.iterations = 8;
  f.config = config;
  const auto image = phantom::shepp_logan(16);
  f.sino = phantom::forward_project(f.geom, image);
  return f;
}

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

double psnr(std::span<const real> test, std::span<const real> ref) {
  double peak = 0.0, mse = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    peak = std::max(peak, static_cast<double>(std::abs(ref[i])));
    const double d = static_cast<double>(test[i]) - ref[i];
    mse += d * d;
  }
  mse /= static_cast<double>(ref.size());
  return 10.0 * std::log10(peak * peak / std::max(mse, 1e-300));
}

// --- Determinism under storm ------------------------------------------------

struct StormRun {
  std::vector<serve::RequestStatus> statuses;
  std::vector<std::vector<real>> images;
  std::vector<std::string> errors;
};

StormRun run_storm(std::uint64_t seed) {
  const auto f = make_fixture();
  const resil::FaultInjector injector(seed);
  resil::FaultInjector::WorkerFaultOptions faults;
  faults.transient_probability = 0.4;
  faults.permanent_probability = 0.1;
  faults.delay_probability = 0.2;
  faults.delay_ms = 2.0;

  serve::ServerOptions options;
  options.workers = 3;
  options.queue_capacity = 32;
  options.degrade.enabled = true;
  options.degrade.rungs = serve::default_ladder();
  options.retry = {.max_attempts = 3, .backoff_ms = 1.0, .seed = seed};
  options.fault_hook = injector.worker_fault_hook(faults);
  serve::Server server(options);

  std::vector<std::int64_t> ids;
  for (int i = 0; i < 24; ++i) {
    serve::RequestOptions ropt;
    ropt.priority = static_cast<serve::Priority>(i % serve::kNumPriorities);
    // A third of the traffic explicitly requests a reduced rung, so the
    // Degraded path is exercised without wall-clock-dependent deadlines
    // (which would break bitwise reproducibility).
    ropt.rung = i % 3 == 2 ? 1 + (i / 3) % 2 : 0;
    ids.push_back(server.submit(f.geom, f.config, f.sino, ropt));
  }
  StormRun run;
  for (const auto id : ids) {
    auto r = server.wait(id);
    run.statuses.push_back(r.status);
    run.images.push_back(std::move(r.image));
    run.errors.push_back(std::move(r.error));
  }
  return run;
}

TEST(Chaos, SameSeedStormsAreBitwiseIdentical) {
  for (const std::uint64_t seed : {7ULL, 99ULL, 20260808ULL}) {
    const StormRun a = run_storm(seed);
    const StormRun b = run_storm(seed);
    ASSERT_EQ(a.statuses.size(), 24u) << "no request may be lost";
    ASSERT_EQ(a.statuses, b.statuses) << "seed " << seed;
    ASSERT_EQ(a.errors, b.errors) << "seed " << seed;
    for (std::size_t i = 0; i < a.images.size(); ++i) {
      ASSERT_EQ(a.images[i].size(), b.images[i].size()) << "seed " << seed;
      if (a.images[i].empty()) continue;  // failed requests carry no image
      EXPECT_EQ(0, std::memcmp(a.images[i].data(), b.images[i].data(),
                               a.images[i].size() * sizeof(real)))
          << "request " << i << " at seed " << seed;
    }
    // The storm exercised every interesting path.
    int failed = 0, degraded = 0, ok = 0;
    for (const auto st : a.statuses) {
      if (st == serve::RequestStatus::Failed) ++failed;
      else if (st == serve::RequestStatus::Degraded) ++degraded;
      else if (st == serve::RequestStatus::Ok) ++ok;
      else FAIL() << "unexpected terminal status " << to_string(st);
    }
    EXPECT_GT(degraded, 0) << "explicit rungs must produce Degraded results";
    EXPECT_GT(ok, 0);
    // Injected-fault messages must carry the seed for reproduction.
    for (std::size_t i = 0; i < a.statuses.size(); ++i)
      if (a.statuses[i] == serve::RequestStatus::Failed)
        EXPECT_NE(a.errors[i].find("seed="), std::string::npos)
            << a.errors[i];
  }
}

// --- Degradation ladder -----------------------------------------------------

TEST(Chaos, DegradedRungsStayWithinErrorBudgets) {
  const auto f = make_fixture();
  const auto rungs = serve::default_ladder();

  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 8;
  options.degrade.enabled = true;
  options.degrade.rungs = rungs;
  serve::Server server(options);

  for (int r = 1; r <= static_cast<int>(rungs.size()); ++r) {
    const auto& rung = rungs[static_cast<std::size_t>(r - 1)];
    // What the rung is supposed to compute, solved directly.
    const core::Config rung_config = serve::apply_rung(f.config, rung);
    const core::Reconstructor direct(f.geom, rung_config);
    const auto exact = direct.reconstruct(f.sino);
    // fp32 twin with identical solver budget: isolates the precision error
    // from the (intentional) under-iteration.
    core::Config twin_config = rung_config;
    twin_config.precision = sparse::ValueStorage::Fp32;
    const core::Reconstructor twin(f.geom, twin_config);
    const auto ref = twin.reconstruct(f.sino);

    const auto result =
        server.wait(server.submit(f.geom, f.config, f.sino, {.rung = r}));
    ASSERT_EQ(result.status, serve::RequestStatus::Degraded)
        << "rung " << r << ": " << result.error;
    EXPECT_EQ(result.rung, r);
    EXPECT_FALSE(result.salvaged);
    ASSERT_EQ(result.image.size(), exact.image.size());
    EXPECT_EQ(0, std::memcmp(result.image.data(), exact.image.data(),
                             exact.image.size() * sizeof(real)))
        << "rung " << r
        << " served image must be bitwise-equal to a direct solve of the "
           "rung config";
    if (rung.min_psnr_db > 0.0)
      EXPECT_GT(psnr(result.image, ref.image), rung.min_psnr_db)
          << "rung " << r << " (" << rung.name << ")";
    EXPECT_GT(result.achieved_residual, 0.0)
        << "degraded results must report how far from convergence they are";
  }
  const auto m = server.snapshot();
  EXPECT_EQ(m.degraded, 2);
  EXPECT_EQ(m.salvaged, 0);
  EXPECT_EQ(m.degraded_by_rung[0], 1);
  EXPECT_EQ(m.degraded_by_rung[1], 1);
}

TEST(Chaos, SalvagedPartialIsDegradedWithBestSoFarIterate) {
  auto f = make_fixture();
  serve::ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.degrade.enabled = true;
  options.degrade.rungs = serve::default_ladder();
  serve::Server server(options);

  // A fixed-iteration solve the deadline cannot cover; the estimate is cold
  // so admission lets it through at rung 0, and the deadline interrupts the
  // solve mid-flight.
  core::Config longrun = f.config;
  longrun.solver = core::SolverKind::SIRT;
  longrun.iterations = 50'000'000;
  const auto r = server.wait(
      server.submit(f.geom, longrun, f.sino, {.deadline_seconds = 0.05}));
  EXPECT_EQ(r.status, serve::RequestStatus::Degraded) << r.error;
  EXPECT_TRUE(r.salvaged);
  EXPECT_TRUE(r.solve.cancelled);
  EXPECT_GE(r.solve.iterations, 1);
  EXPECT_LT(r.solve.iterations, 50'000'000);
  EXPECT_FALSE(r.image.empty()) << "the best-so-far iterate is the payload";
  const auto m = server.snapshot();
  EXPECT_EQ(m.degraded, 1);
  EXPECT_EQ(m.salvaged, 1);
}

TEST(Chaos, LadderAdmissionWalksDownRungs) {
  serve::RequestScheduler scheduler(
      {.queue_capacity = 8,
       .degrade = {.enabled = true, .rungs = serve::default_ladder()}});
  scheduler.observe_service_seconds(1.0);  // full-quality estimate: 1 s

  const auto admit_with_deadline = [&](double deadline_s, int requested = 0) {
    auto s = std::make_shared<serve::RequestState>();
    s->options.deadline_seconds = deadline_s;
    s->options.rung = requested;
    scheduler.admit(s);
    return s;
  };

  // Plenty of budget: full quality.
  EXPECT_EQ(admit_with_deadline(2.0)->rung, 0);
  // Between full (1.0) and rung 1 (0.5): degrade one step.
  const auto one = admit_with_deadline(0.6);
  EXPECT_EQ(one->rung, 1);
  EXPECT_TRUE(one->degraded_admission);
  // Between rung 1 (0.5) and rung 2 (0.25): degrade two steps.
  EXPECT_EQ(admit_with_deadline(0.4)->rung, 2);
  // Explicitly requested rung 1 that is still infeasible walks further down
  // (never up).
  EXPECT_EQ(admit_with_deadline(0.3, 1)->rung, 2);
  EXPECT_EQ(scheduler.degraded_admissions(), 3);

  // Below even the cheapest rung: typed rejection naming it.
  try {
    (void)admit_with_deadline(0.1);
    FAIL() << "expected DeadlineInfeasibleError";
  } catch (const serve::DeadlineInfeasibleError& e) {
    EXPECT_NE(std::string(e.what()).find("cheapest rung"), std::string::npos)
        << e.what();
  }

  // A rung request without the ladder enabled is a caller bug.
  serve::RequestScheduler no_ladder({.queue_capacity = 2});
  auto s = std::make_shared<serve::RequestState>();
  s->options.rung = 1;
  EXPECT_THROW(no_ladder.admit(s), InvalidArgument);

  // Malformed ladders are rejected at construction.
  serve::DegradeRung bad;
  bad.iteration_fraction = 0.0;
  EXPECT_THROW(serve::Server({.degrade = {.enabled = true, .rungs = {bad}}}),
               InvalidArgument);
}

// --- Retry / backoff --------------------------------------------------------

TEST(Chaos, RetryRecoversTransientFaultsAndKeepsPermanentOnes) {
  const auto f = make_fixture();
  // First attempt of every request throws TransientError; the retry must
  // recover it. Request 5 is permanently broken on every attempt.
  serve::ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 8;
  options.retry = {.max_attempts = 3, .backoff_ms = 1.0};
  options.fault_hook = [](std::int64_t id, int attempt) {
    if (id == 5) throw IoError("permanently broken");
    if (attempt == 1) throw TransientError("first attempt always fails");
  };
  serve::Server server(options);

  std::vector<std::int64_t> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(server.submit(f.geom, f.config, f.sino));
  for (const auto id : ids) {
    const auto r = server.wait(id);
    if (id == 5) {
      EXPECT_EQ(r.status, serve::RequestStatus::Failed);
      EXPECT_NE(r.error.find("permanently broken"), std::string::npos);
      EXPECT_EQ(r.attempts, 1) << "permanent faults must not be retried";
    } else {
      EXPECT_EQ(r.status, serve::RequestStatus::Ok) << r.error;
      EXPECT_EQ(r.attempts, 2);
      EXPECT_GT(r.backoff_seconds, 0.0);
    }
  }
  const auto m = server.snapshot();
  EXPECT_EQ(m.retries, 7);
  EXPECT_EQ(m.retry_exhausted, 0);
  EXPECT_EQ(m.retry_backoff.count(), 7);
}

TEST(Chaos, RetryExhaustionFailsWithTypedMessage) {
  const auto f = make_fixture();
  serve::ServerOptions options;
  options.workers = 1;
  options.retry = {.max_attempts = 2, .backoff_ms = 1.0};
  options.fault_hook = [](std::int64_t, int) {
    throw TransientError("injected transient fault");
  };
  serve::Server server(options);
  const auto r = server.wait(server.submit(f.geom, f.config, f.sino));
  EXPECT_EQ(r.status, serve::RequestStatus::Failed);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_NE(r.error.find("failed after 2 attempts"), std::string::npos)
      << r.error;
  EXPECT_EQ(server.snapshot().retry_exhausted, 1);
}

TEST(Chaos, RetryBackoffIsChargedAgainstTheDeadline) {
  const auto f = make_fixture();
  serve::ServerOptions options;
  options.workers = 1;
  // Backoff far beyond the deadline: the worker must abandon instead of
  // sleeping past it.
  options.retry = {.max_attempts = 10, .backoff_ms = 60'000.0};
  options.fault_hook = [](std::int64_t, int) {
    throw TransientError("flaky");
  };
  serve::Server server(options);
  const auto r = server.wait(
      server.submit(f.geom, f.config, f.sino, {.deadline_seconds = 5.0}));
  EXPECT_EQ(r.status, serve::RequestStatus::Failed);
  EXPECT_NE(r.error.find("retry abandoned"), std::string::npos) << r.error;
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.backoff_seconds, 0.0) << "no sleep may be spent";
  EXPECT_EQ(server.snapshot().retry_abandoned, 1);
}

TEST(Chaos, RetryJitterIsDeterministicAndBounded) {
  const serve::RetryPolicy a({.max_attempts = 5, .backoff_ms = 10.0,
                              .multiplier = 2.0, .jitter_fraction = 0.5,
                              .seed = 123});
  const serve::RetryPolicy b({.max_attempts = 5, .backoff_ms = 10.0,
                              .multiplier = 2.0, .jitter_fraction = 0.5,
                              .seed = 123});
  for (std::int64_t id = 0; id < 4; ++id) {
    for (int attempt = 1; attempt <= 4; ++attempt) {
      const double base = 10e-3 * std::pow(2.0, attempt - 1);
      const double d = a.delay_seconds(id, attempt);
      EXPECT_EQ(d, b.delay_seconds(id, attempt))
          << "same (seed, id, attempt) must draw the same jitter";
      EXPECT_GE(d, base);
      EXPECT_LE(d, base * 1.5);
    }
  }
  // Different seed, different draws (overwhelmingly likely across 16 cells).
  const serve::RetryPolicy c({.max_attempts = 5, .backoff_ms = 10.0,
                              .multiplier = 2.0, .jitter_fraction = 0.5,
                              .seed = 124});
  int diffs = 0;
  for (std::int64_t id = 0; id < 4; ++id)
    for (int attempt = 1; attempt <= 4; ++attempt)
      if (a.delay_seconds(id, attempt) != c.delay_seconds(id, attempt))
        ++diffs;
  EXPECT_GT(diffs, 0);
}

// --- Watchdog ---------------------------------------------------------------

TEST(Chaos, WatchdogCancelsStalledWorkerAndServerSurvives) {
  const auto f = make_fixture();
  serve::ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.watchdog_ms = 50.0;
  // Request 0 wedges for far longer than the stall threshold; everything
  // else runs clean.
  options.fault_hook = [](std::int64_t id, int) {
    if (id == 0) resil::FaultInjector::inject_delay(300.0);
  };
  serve::Server server(options);

  const auto stalled = server.submit(f.geom, f.config, f.sino);
  const auto r = server.wait(stalled);
  EXPECT_EQ(r.status, serve::RequestStatus::Failed);
  EXPECT_NE(r.error.find("watchdog"), std::string::npos) << r.error;
  EXPECT_EQ(server.snapshot().watchdog_cancelled, 1);

  // The server keeps serving after a watchdog kill.
  const auto healthy = server.wait(server.submit(f.geom, f.config, f.sino));
  EXPECT_EQ(healthy.status, serve::RequestStatus::Ok) << healthy.error;
}

// --- Circuit breaker over the disk-cache tier -------------------------------

TEST(Chaos, BreakerOpensBypassesDiskTierAndRecloses) {
  const TempDir tmp("memxct_chaos_breaker");
  const auto f = make_fixture();
  resil::FaultInjector injector(31);
  std::atomic<bool> corrupt{false};
  const auto corrupt_cache_files = [&] {
    for (const auto& entry : fs::directory_iterator(tmp.path))
      injector.flip_byte_at(entry.path().string(), 8);
  };

  // byte_budget 1: nothing is retained in memory, so every acquire builds
  // and consults the disk tier — the breaker sees every tier outcome.
  serve::OperatorRegistry registry(
      {.byte_budget = 1,
       .disk_cache_dir = tmp.path.string(),
       .breaker = {.failure_threshold = 2, .cooldown_seconds = 0.05},
       .pre_build_hook = [&](const std::string&) {
         if (corrupt.load()) corrupt_cache_files();
       }});

  // Build 1: cold trace, cache written, tier success.
  (void)registry.acquire(f.geom, f.config);
  EXPECT_EQ(registry.breaker().state(), serve::CircuitBreaker::State::Closed);

  // Builds 2 and 3 load a freshly corrupted cache each time: two
  // consecutive tier failures trip the breaker.
  corrupt.store(true);
  (void)registry.acquire(f.geom, f.config);
  EXPECT_EQ(registry.breaker().state(), serve::CircuitBreaker::State::Closed);
  (void)registry.acquire(f.geom, f.config);
  EXPECT_EQ(registry.breaker().state(), serve::CircuitBreaker::State::Open);
  EXPECT_EQ(registry.stats().cache_corrupt_loads, 2);
  EXPECT_EQ(registry.stats().breaker_opens, 1);

  // Build 4: breaker open — the disk tier is bypassed entirely (straight to
  // re-trace, no doomed load-and-verify), and still serves correctly. The
  // corruption stops here so build 3's rewritten cache file stays valid for
  // the probe below.
  corrupt.store(false);
  const auto bypassed = registry.acquire(f.geom, f.config);
  EXPECT_FALSE(bypassed.disk_hit);
  ASSERT_NE(bypassed.recon, nullptr);
  EXPECT_EQ(registry.stats().breaker_bypassed_builds, 1);
  EXPECT_EQ(registry.stats().cache_corrupt_loads, 2)
      << "an open breaker must not rack up further tier failures";

  // After the cooldown, with the corruption gone (build 3 rewrote a valid
  // cache file), the half-open probe succeeds and the breaker recloses.
  corrupt.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  const auto probe = registry.acquire(f.geom, f.config);
  EXPECT_TRUE(probe.disk_hit) << "the probe build goes through the tier";
  EXPECT_EQ(registry.breaker().state(), serve::CircuitBreaker::State::Closed);
  EXPECT_EQ(registry.stats().breaker_probes, 1);

  // And the tier stays healthy afterwards.
  EXPECT_TRUE(registry.acquire(f.geom, f.config).disk_hit);
}

TEST(Chaos, BreakerStateMachineUnit) {
  serve::CircuitBreaker breaker({.failure_threshold = 2,
                                 .cooldown_seconds = 0.02});
  EXPECT_TRUE(breaker.allow_request());
  breaker.record_failure();
  EXPECT_TRUE(breaker.allow_request()) << "one failure below threshold";
  breaker.record_success();
  breaker.record_failure();
  EXPECT_TRUE(breaker.allow_request())
      << "success resets the consecutive count";
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow_request()) << "cooldown not elapsed";
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(breaker.allow_request()) << "half-open probe admitted";
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::HalfOpen);
  EXPECT_FALSE(breaker.allow_request()) << "one probe in flight at a time";
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::Open)
      << "failed probe reopens with a fresh cooldown";
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(breaker.allow_request());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), serve::CircuitBreaker::State::Closed);
  const auto s = breaker.stats();
  EXPECT_EQ(s.opens, 2);
  EXPECT_EQ(s.probes, 2);
}

// --- Cancellation corners ---------------------------------------------------

TEST(Chaos, CancelMidSolveLeavesCheckpointAbsentOrValid) {
  const TempDir tmp("memxct_chaos_checkpoint");
  auto f = make_fixture();
  f.config.iterations = 1'000'000;
  f.config.checkpoint_path = (tmp.path / "cp.bin").string();
  f.config.checkpoint_interval = 1;  // snapshot every iteration

  const core::Reconstructor recon(f.geom, f.config);
  solve::CancelToken token;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.request_cancel();
  });
  const auto res = core::reconstruct_slice(
      recon.op(), f.geom, f.config, recon.sinogram_ordering(),
      recon.tomogram_ordering(), f.sino, nullptr, &token);
  killer.join();
  ASSERT_TRUE(res.solve.cancelled);

  // The checked atomic write protocol (temp file + rename) means a cancel —
  // however it lands — can never expose a torn checkpoint: the file is
  // either absent or fully valid, and no temp litter remains.
  if (fs::exists(f.config.checkpoint_path)) {
    EXPECT_NO_THROW((void)resil::load_checkpoint(f.config.checkpoint_path));
  }
  for (const auto& entry : fs::directory_iterator(tmp.path))
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "stray temp file: " << entry.path();
}

TEST(Chaos, FailedSingleFlightBuildGivesTypedErrorToEveryWaiter) {
  const auto f = make_fixture();
  serve::OperatorRegistry registry(
      {.pre_build_hook = [](const std::string&) {
        throw TransientError("build always fails");
      }});
  constexpr int kThreads = 6;
  std::atomic<int> typed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        (void)registry.acquire(f.geom, f.config);
      } catch (const TransientError&) {
        typed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();  // completing at all proves no hang
  EXPECT_EQ(typed.load(), kThreads)
      << "every waiter must surface the typed build error";
}

TEST(Chaos, PreCancelledTokenStopsEverySolverAtIterationZero) {
  auto f = make_fixture();
  solve::CancelToken token;
  token.request_cancel();
  for (const auto solver :
       {core::SolverKind::CGLS, core::SolverKind::SIRT,
        core::SolverKind::GradientDescent}) {
    core::Config config = f.config;
    config.solver = solver;
    const core::Reconstructor recon(f.geom, config);
    const auto res = core::reconstruct_slice(
        recon.op(), f.geom, config, recon.sinogram_ordering(),
        recon.tomogram_ordering(), f.sino, nullptr, &token);
    EXPECT_TRUE(res.solve.cancelled) << to_string(solver);
    EXPECT_EQ(res.solve.iterations, 0) << to_string(solver);
  }
}

TEST(Chaos, QueueFullBurstLosesNoRequest) {
  auto f = make_fixture();
  serve::Server server({.workers = 1, .queue_capacity = 2});
  // Occupy the worker so the burst piles onto the bounded queue.
  core::Config blocker = f.config;
  blocker.solver = core::SolverKind::SIRT;
  blocker.iterations = 3000;
  std::vector<std::int64_t> admitted;
  admitted.push_back(server.submit(f.geom, blocker, f.sino));
  int rejected = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      admitted.push_back(server.submit(f.geom, f.config, f.sino));
    } catch (const serve::QueueFullError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0) << "the bounded queue must push back";
  for (const auto id : admitted) {
    const auto r = server.wait(id);
    EXPECT_TRUE(is_terminal(r.status));
    EXPECT_EQ(r.status, serve::RequestStatus::Ok) << r.error;
  }
  EXPECT_EQ(static_cast<int>(admitted.size()) + rejected, 11)
      << "every request is either admitted-and-finished or typed-rejected";
}

}  // namespace
