// Additional core-API coverage: non-default kernel configurations,
// preprocessing determinism, distributed buffered path, and work
// accounting consistency.
#include <gtest/gtest.h>

#include "core/reconstructor.hpp"
#include "geometry/projector.hpp"
#include "phantom/datasets.hpp"
#include "phantom/phantom.hpp"
#include "test_util.hpp"

namespace memxct::core {
namespace {

struct KernelConfigCase {
  KernelKind kind;
  sparse::BufferConfig buffer;
  idx_t ell_block_rows;
};

class KernelConfigSweep
    : public ::testing::TestWithParam<KernelConfigCase> {};

TEST_P(KernelConfigSweep, NonDefaultConfigsStayCorrect) {
  const auto& param = GetParam();
  const auto g = geometry::make_geometry(18, 24);
  const hilbert::Ordering sino(g.sinogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  const hilbert::Ordering tomo(g.tomogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  auto a = geometry::build_projection_matrix(g, sino, tomo);
  const auto reference = a;
  const MemXCTOperator op(std::move(a), param.kind, param.buffer,
                          param.ell_block_rows);

  const auto x = testutil::random_vector(op.num_cols(), 3);
  AlignedVector<real> y_op(static_cast<std::size_t>(op.num_rows()));
  AlignedVector<real> y_ref(static_cast<std::size_t>(op.num_rows()));
  op.apply(x, y_op);
  sparse::spmv_reference(reference, x, y_ref);
  EXPECT_LT(testutil::rel_error(y_op, y_ref), 1e-5);
  EXPECT_EQ(op.nnz(), reference.nnz());
  EXPECT_GT(op.regular_bytes(), 0);
  EXPECT_EQ(op.forward_work().nnz > 0, true);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, KernelConfigSweep,
    ::testing::Values(
        KernelConfigCase{KernelKind::Buffered, {1, 1}, 64},     // degenerate
        KernelConfigCase{KernelKind::Buffered, {7, 13}, 64},    // odd sizes
        KernelConfigCase{KernelKind::Buffered, {512, 65536}, 64},
        KernelConfigCase{KernelKind::EllBlock, {128, 4096}, 1},
        KernelConfigCase{KernelKind::EllBlock, {128, 4096}, 7},
        KernelConfigCase{KernelKind::EllBlock, {128, 4096}, 1024}));

TEST(CoreExtra, PreprocessingIsDeterministic) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 3);
  Config config;
  config.iterations = 5;
  const Reconstructor r1(data.geometry, config);
  const Reconstructor r2(data.geometry, config);
  EXPECT_EQ(r1.preprocess_report().nnz, r2.preprocess_report().nnz);
  const auto a = r1.reconstruct(data.sinogram);
  const auto b = r2.reconstruct(data.sinogram);
  EXPECT_EQ(a.image, b.image);  // bit-identical: no hidden nondeterminism
}

TEST(CoreExtra, DistributedBufferedConfigMatchesSerial) {
  // Config.kernel = Buffered on the distributed path selects the buffered
  // local kernels; results must match the serial buffered reconstruction.
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 4);
  Config serial_config;
  serial_config.iterations = 6;
  Config dist_config = serial_config;
  dist_config.num_ranks = 4;
  const Reconstructor serial(data.geometry, serial_config);
  const Reconstructor dist(data.geometry, dist_config);
  const auto r1 = serial.reconstruct(data.sinogram);
  const auto r2 = dist.reconstruct(data.sinogram);
  EXPECT_LT(testutil::rel_error(r2.image, r1.image), 2e-2);
}

TEST(CoreExtra, TikhonovConfigReducesSolutionNorm) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 5, 1e4);
  Config plain;
  plain.iterations = 20;
  Config damped = plain;
  damped.tikhonov_lambda = 8.0;
  const Reconstructor r_plain(data.geometry, plain);
  const Reconstructor r_damped(data.geometry, damped);
  const auto a = r_plain.reconstruct(data.sinogram);
  const auto b = r_damped.reconstruct(data.sinogram);
  double na = 0.0, nb = 0.0;
  for (const real v : a.image) na += static_cast<double>(v) * v;
  for (const real v : b.image) nb += static_cast<double>(v) * v;
  EXPECT_LT(nb, na);
}

TEST(CoreExtra, HistoryRecordsLCurveMonotonicity) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 6);
  Config config;
  config.iterations = 15;
  const Reconstructor recon(data.geometry, config);
  const auto result = recon.reconstruct(data.sinogram);
  ASSERT_EQ(result.solve.history.size(), 15u);
  for (std::size_t i = 1; i < result.solve.history.size(); ++i)
    EXPECT_LE(result.solve.history[i].residual_norm,
              result.solve.history[i - 1].residual_norm * (1 + 1e-6));
}

TEST(CoreExtra, MortonOrderingEndToEnd) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 8);
  Config config;
  config.ordering = hilbert::CurveKind::Morton;
  config.iterations = 10;
  const Reconstructor recon(data.geometry, config);
  const auto result = recon.reconstruct(data.sinogram);
  const std::vector<real> zeros(data.image.size(), 0.0f);
  EXPECT_LT(phantom::rmse(result.image, data.image),
            0.5 * phantom::rmse(zeros, data.image));
}

TEST(CoreExtra, RejectsInvalidRankCount) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  Config config;
  config.num_ranks = 0;
  // validate_config classifies a bad rank count as a caller error, not an
  // internal invariant violation.
  EXPECT_THROW(Reconstructor(spec.geometry(), config), InvalidArgument);
}

}  // namespace
}  // namespace memxct::core
