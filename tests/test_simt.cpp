// Tests for the SIMT memory-access model and kernel analyses.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "simt/kernel_analysis.hpp"
#include "test_util.hpp"

namespace memxct::simt {
namespace {

TEST(WarpModel, FullyCoalescedIsOneTransaction) {
  // 32 lanes x 4 B consecutive = one 128 B transaction.
  std::vector<std::uint64_t> addr;
  for (int lane = 0; lane < 32; ++lane) addr.push_back(0x1000 + 4 * lane);
  EXPECT_EQ(warp_transactions(addr), 1);
}

TEST(WarpModel, MisalignedCoalescedIsTwoTransactions) {
  std::vector<std::uint64_t> addr;
  for (int lane = 0; lane < 32; ++lane) addr.push_back(0x1040 + 4 * lane);
  EXPECT_EQ(warp_transactions(addr), 2);  // straddles a 128 B boundary
}

TEST(WarpModel, FullyScatteredIsOnePerLane) {
  std::vector<std::uint64_t> addr;
  for (int lane = 0; lane < 32; ++lane)
    addr.push_back(0x1000 + 4096ull * lane);
  EXPECT_EQ(warp_transactions(addr), 32);
}

TEST(WarpModel, SameAddressBroadcasts) {
  const std::vector<std::uint64_t> addr(32, 0x2000);
  EXPECT_EQ(warp_transactions(addr), 1);
  EXPECT_EQ(warp_transactions({}), 0);
}

TEST(WarpModel, StridedAccessCostsStride) {
  // Stride of 32 floats (128 B): every lane in its own transaction.
  std::vector<std::uint64_t> addr;
  for (int lane = 0; lane < 32; ++lane) addr.push_back(128ull * lane);
  EXPECT_EQ(warp_transactions(addr), 32);
}

TEST(BankConflicts, ConsecutiveWordsAreConflictFree) {
  std::vector<idx_t> words;
  for (idx_t lane = 0; lane < 32; ++lane) words.push_back(lane);
  EXPECT_EQ(bank_conflict_degree(words), 1);
}

TEST(BankConflicts, SameWordBroadcastsConflictFree) {
  const std::vector<idx_t> words(32, 7);
  EXPECT_EQ(bank_conflict_degree(words), 1);
}

TEST(BankConflicts, PowerOfTwoStrideConflicts) {
  // Stride 32: all lanes hit bank 0 with distinct words = 32-way conflict.
  std::vector<idx_t> words;
  for (idx_t lane = 0; lane < 32; ++lane) words.push_back(32 * lane);
  EXPECT_EQ(bank_conflict_degree(words), 32);
  // Stride 2: two lanes per bank.
  words.clear();
  for (idx_t lane = 0; lane < 32; ++lane) words.push_back(2 * lane);
  EXPECT_EQ(bank_conflict_degree(words), 2);
}

TEST(EllAnalysis, ColumnMajorStreamsAreCoalesced) {
  const auto a = testutil::banded_csr(512, 512, 16, 61);
  const auto ell = sparse::to_ell_block(a, 64);
  const auto col = analyze_ell_spmv(ell, EllLaneOrder::ColumnMajor);
  const auto row = analyze_ell_spmv(ell, EllLaneOrder::RowMajor);
  ASSERT_GT(col.warp_steps, 0);
  // Column-major: one ind + one val transaction per full warp step.
  EXPECT_LT(col.stream_per_step(), 1.2);
  // Row-major lane order strides by the padded width: an order of
  // magnitude more transactions.
  EXPECT_GT(row.stream_per_step(), 5.0 * col.stream_per_step());
  // The gather cost is layout-independent (same logical elements).
  EXPECT_EQ(col.warp_steps, row.warp_steps);
}

TEST(EllAnalysis, SamplingBoundsWork) {
  const auto a = testutil::banded_csr(1024, 512, 8, 63);
  const auto ell = sparse::to_ell_block(a, 64);
  const auto full = analyze_ell_spmv(ell, EllLaneOrder::ColumnMajor);
  const auto sampled =
      analyze_ell_spmv(ell, EllLaneOrder::ColumnMajor, {}, 4);
  EXPECT_LT(sampled.warp_steps, full.warp_steps);
  EXPECT_NEAR(sampled.stream_per_step(), full.stream_per_step(), 0.3);
}

TEST(BufferedAnalysis, BandedMatrixStagesCoalesced) {
  // A Hilbert-like banded matrix stages near-contiguous map entries:
  // staging should approach 1 transaction per warp step (plus boundary
  // effects), and bank conflicts should be rare.
  const auto a = testutil::banded_csr(512, 512, 16, 65);
  const auto bm = sparse::build_buffered(a, {64, 1024});
  const auto report = analyze_buffered_spmv(bm);
  ASSERT_GT(report.staging_warp_steps, 0);
  EXPECT_LT(report.staging_per_step(), 2.0);
  ASSERT_GT(report.compute_warp_steps, 0);
  EXPECT_GE(report.mean_conflict_degree, 1.0);
  EXPECT_LE(report.mean_conflict_degree, report.max_conflict_degree);
}

TEST(BufferedAnalysis, ScatteredMatrixStagesWorse) {
  const auto banded = testutil::banded_csr(256, 4096, 16, 67);
  const auto random = testutil::random_csr(256, 4096, 0.008, 67);
  const auto bm_banded = sparse::build_buffered(banded, {64, 1024});
  const auto bm_random = sparse::build_buffered(random, {64, 1024});
  const auto r_banded = analyze_buffered_spmv(bm_banded);
  const auto r_random = analyze_buffered_spmv(bm_random);
  // Random columns scatter the staging gather across the x vector (worse
  // per-step coalescing; the map is sorted either way, so the gap is
  // moderate) and enlarge the footprint (more staging steps for
  // comparable nnz).
  EXPECT_GT(r_random.staging_per_step(), 1.2 * r_banded.staging_per_step());
  EXPECT_GT(static_cast<double>(bm_random.total_staged()),
            1.5 * static_cast<double>(bm_banded.total_staged()));
}

}  // namespace
}  // namespace memxct::simt
