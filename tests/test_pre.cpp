// Tests for measurement preprocessing: transmission normalization and
// center-of-rotation handling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "phantom/phantom.hpp"
#include "pre/normalize.hpp"

namespace memxct::pre {
namespace {

TEST(Normalize, InvertsBeersLaw) {
  // Synthesize raw counts from known line integrals and recover them.
  const auto g = geometry::make_geometry(8, 16);
  const auto img = phantom::shepp_logan(g.image_size);
  const auto truth = phantom::forward_project(g, img);

  const double i0 = 5e4, dark_level = 100.0;
  AlignedVector<real> flat(16, static_cast<real>(i0 + dark_level));
  AlignedVector<real> dark(16, static_cast<real>(dark_level));
  AlignedVector<real> raw(truth.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    raw[i] = static_cast<real>(
        dark_level + i0 * std::exp(-static_cast<double>(truth[i])));

  const auto recovered = normalize_transmission(g, raw, flat, dark);
  for (std::size_t i = 0; i < truth.size(); ++i)
    EXPECT_NEAR(recovered[i], truth[i], 1e-3 + 1e-3 * truth[i]);
}

TEST(Normalize, ClampsNonPhysicalCounts) {
  // Counts above flat (transmission > 1) clamp to zero attenuation;
  // counts below dark clamp without NaN/inf.
  const auto g = geometry::make_geometry(1, 4);
  const AlignedVector<real> flat{100, 100, 100, 100};
  const AlignedVector<real> dark{10, 10, 10, 10};
  const AlignedVector<real> raw{200, 5, 10, 55};
  const auto p = normalize_transmission(g, raw, flat, dark);
  EXPECT_FLOAT_EQ(p[0], 0.0f);          // transmission clamped to 1
  EXPECT_TRUE(std::isfinite(p[1]));     // below dark: finite, large
  EXPECT_GT(p[1], p[3]);
  EXPECT_TRUE(std::isfinite(p[2]));
  EXPECT_NEAR(p[3], -std::log(0.5), 1e-5);
}

TEST(Normalize, PerChannelGainCorrected) {
  // A channel with double flat-field gain must yield the same attenuation.
  const auto g = geometry::make_geometry(1, 2);
  const AlignedVector<real> flat{100, 200};
  const AlignedVector<real> dark{0, 0};
  const AlignedVector<real> raw{50, 100};  // both 50% transmission
  const auto p = normalize_transmission(g, raw, flat, dark);
  EXPECT_NEAR(p[0], p[1], 1e-6);
}

TEST(CenterOffset, ZeroForCenteredObject) {
  const auto g = geometry::make_geometry(32, 64);
  const auto img = phantom::shepp_logan(g.image_size);
  const auto sino = phantom::forward_project(g, img);
  EXPECT_NEAR(estimate_center_offset(g, sino), 0.0, 0.5);
}

TEST(CenterOffset, RecoversKnownShift) {
  const auto g = geometry::make_geometry(32, 64);
  const auto img = phantom::shepp_logan(g.image_size);
  const auto sino = phantom::forward_project(g, img);
  for (const double shift : {-4.0, -1.5, 2.0, 5.0}) {
    const auto shifted = shift_sinogram(g, sino, shift);
    EXPECT_NEAR(estimate_center_offset(g, shifted), shift, 0.5)
        << "shift " << shift;
  }
}

TEST(CenterOffset, ShiftThenUnshiftIsNearIdentity) {
  const auto g = geometry::make_geometry(16, 64);
  const auto img = phantom::shepp_logan(g.image_size);
  const auto sino = phantom::forward_project(g, img);
  const auto there = shift_sinogram(g, sino, 3.0);
  const auto back = shift_sinogram(g, there, -3.0);
  // Interior channels (away from the zero-filled edges) round-trip.
  double max_err = 0.0;
  for (idx_t a = 0; a < g.num_angles; ++a)
    for (idx_t c = 8; c < g.num_channels - 8; ++c) {
      const auto i = static_cast<std::size_t>(g.ray_index(a, c));
      max_err = std::max(max_err,
                         std::abs(static_cast<double>(back[i]) - sino[i]));
    }
  EXPECT_LT(max_err, 0.5);
}

TEST(CenterOffset, IntegerShiftIsExact) {
  const auto g = geometry::make_geometry(4, 16);
  AlignedVector<real> sino(
      static_cast<std::size_t>(g.sinogram_extent().size()));
  Rng rng(31);
  for (auto& v : sino) v = static_cast<real>(rng.uniform());
  const auto shifted = shift_sinogram(g, sino, 2.0);
  for (idx_t a = 0; a < g.num_angles; ++a)
    for (idx_t c = 2; c < g.num_channels; ++c)
      EXPECT_FLOAT_EQ(
          shifted[static_cast<std::size_t>(g.ray_index(a, c))],
          sino[static_cast<std::size_t>(g.ray_index(a, c - 2))]);
}

TEST(Normalize, RejectsMismatchedSizes) {
  const auto g = geometry::make_geometry(2, 4);
  const AlignedVector<real> raw(8), short_field(2);
  const AlignedVector<real> field(4);
  EXPECT_THROW(normalize_transmission(g, raw, short_field, field),
               InvariantError);
  EXPECT_THROW((void)estimate_center_offset(g, short_field),
               InvariantError);
}

}  // namespace
}  // namespace memxct::pre
