// Delta/varint codec tests: LEB128 round-trips at the encoding boundaries,
// ascending-run encode/decode including the empty-row / single-element /
// max-gap corners the compressed operators hit, and the checked Reader's
// rejection of truncated, overlong, and non-ascending streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include <utility>

#include "common/error.hpp"
#include "sparse/compressed.hpp"
#include "sparse/spmv.hpp"
#include "sparse/varint.hpp"
#include "test_util.hpp"

namespace memxct::sparse {
namespace {

using Bytes = std::vector<std::uint8_t>;

TEST(Varint, PutGetRoundTripAtBoundaries) {
  const std::uint32_t cases[] = {0u,         1u,
                                 127u,       128u,
                                 16383u,     16384u,
                                 2097151u,   2097152u,
                                 268435455u, 268435456u,
                                 std::numeric_limits<std::uint32_t>::max()};
  for (const std::uint32_t v : cases) {
    Bytes out;
    varint::put(out, v);
    ASSERT_LE(out.size(), static_cast<std::size_t>(varint::kMaxBytes));
    // Unchecked hot-path decoder.
    std::uint32_t decoded = ~v;
    const std::uint8_t* end = varint::get(out.data(), decoded);
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(end, out.data() + out.size());
    // Checked reader agrees and consumes the same bytes.
    varint::Reader r(out);
    EXPECT_EQ(r.next(), v);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(r.consumed(), out.size());
  }
}

TEST(Varint, EncodedSizeMatchesSevenBitGroups) {
  Bytes out;
  varint::put(out, 127u);
  EXPECT_EQ(out.size(), 1u);
  out.clear();
  varint::put(out, 128u);
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  varint::put(out, std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(out.size(), 5u);
}

TEST(Varint, EmptyRunEncodesToNothing) {
  Bytes out;
  varint::encode_run({}, out);
  EXPECT_TRUE(out.empty());
  varint::Reader r(out);
  std::vector<idx_t> decoded;
  varint::decode_run(r, 0, 100, decoded);
  EXPECT_TRUE(decoded.empty());
  EXPECT_TRUE(r.done());
}

TEST(Varint, SingleElementRunRoundTrips) {
  // A one-nnz row: the lone element encodes as value + 1 (virtual
  // predecessor -1), so element 0 costs exactly one byte.
  for (const idx_t v : {idx_t{0}, idx_t{1}, idx_t{126}, idx_t{127},
                        std::numeric_limits<idx_t>::max() - 1}) {
    Bytes out;
    const idx_t run[] = {v};
    varint::encode_run(run, out);
    if (v == 0) EXPECT_EQ(out.size(), 1u);
    varint::Reader r(out);
    std::vector<idx_t> decoded;
    varint::decode_run(r, 1, -1, decoded);
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0], v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Varint, MaxGapDeltasRoundTrip) {
  // Gaps spanning nearly the whole idx_t range, including the largest
  // representable final element.
  const std::vector<idx_t> run = {0, 1, std::numeric_limits<idx_t>::max() - 1,
                                  std::numeric_limits<idx_t>::max()};
  Bytes out;
  varint::encode_run(run, out);
  varint::Reader r(out);
  std::vector<idx_t> decoded;
  varint::decode_run(r, static_cast<idx_t>(run.size()), -1, decoded);
  EXPECT_EQ(decoded, run);
  EXPECT_TRUE(r.done());
}

TEST(Varint, DenseRunCostsOneBytePerElement) {
  std::vector<idx_t> run(1000);
  for (idx_t i = 0; i < 1000; ++i) run[static_cast<std::size_t>(i)] = i;
  Bytes out;
  varint::encode_run(run, out);
  EXPECT_EQ(out.size(), run.size());  // every gap is 1 -> one byte each
  varint::Reader r(out);
  std::vector<idx_t> decoded;
  varint::decode_run(r, 1000, 1000, decoded);
  EXPECT_EQ(decoded, run);
}

TEST(Varint, EncodeRejectsNonAscendingRun) {
  Bytes out;
  const idx_t dup[] = {3, 3};
  EXPECT_THROW(varint::encode_run(dup, out), InvariantError);
  const idx_t desc[] = {5, 2};
  EXPECT_THROW(varint::encode_run(desc, out), InvariantError);
  const idx_t neg[] = {-2};
  EXPECT_THROW(varint::encode_run(neg, out), InvariantError);
}

TEST(Varint, ReaderRejectsTruncatedStream) {
  Bytes out;
  varint::put(out, 300u);  // two bytes
  out.pop_back();          // continuation bit set, nothing follows
  varint::Reader r(out);
  EXPECT_THROW((void)r.next(), IoError);
  // Empty stream is also truncation.
  varint::Reader empty(Bytes{});
  EXPECT_THROW((void)empty.next(), IoError);
}

TEST(Varint, ReaderRejectsOverlongAndOverflowingEncodings) {
  // Six continuation bytes: exceeds kMaxBytes.
  const Bytes overlong = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  varint::Reader r1(overlong);
  EXPECT_THROW((void)r1.next(), IoError);
  // Five bytes whose top group pushes past 32 bits (2^35).
  const Bytes overflow = {0x80, 0x80, 0x80, 0x80, 0x20};
  varint::Reader r2(overflow);
  EXPECT_THROW((void)r2.next(), IoError);
}

TEST(Varint, DecodeRunRejectsZeroGapAndOutOfBound) {
  // A zero gap means the stream is not strictly ascending.
  Bytes zero_gap;
  varint::put(zero_gap, 1u);  // element 0
  varint::put(zero_gap, 0u);  // "same element again"
  varint::Reader r1(zero_gap);
  std::vector<idx_t> out;
  EXPECT_THROW(varint::decode_run(r1, 2, 10, out), IoError);

  // An element at the bound is rejected (bound is exclusive).
  Bytes at_bound;
  varint::put(at_bound, 11u);  // element 10
  varint::Reader r2(at_bound);
  out.clear();
  EXPECT_THROW(varint::decode_run(r2, 1, 10, out), IoError);

  // Accumulated gaps overflowing idx_t are rejected even unbounded.
  Bytes big;
  varint::put(big, std::numeric_limits<std::uint32_t>::max());
  varint::put(big, std::numeric_limits<std::uint32_t>::max());
  varint::Reader r3(big);
  out.clear();
  EXPECT_THROW(varint::decode_run(r3, 2, -1, out), IoError);
}

// --- codec through the compressed CSR container -----------------------------

TEST(Varint, CompressedCsrRoundTripsEmptyAndSingleNnzRows) {
  // Rows: empty, single-nnz, empty, dense-ish, empty tail — the corner
  // shapes a traced projection matrix produces at the detector edges.
  CsrBuilder b(5, 8);
  const std::vector<std::pair<idx_t, real>> single{{4, 0.5f}};
  const std::vector<std::pair<idx_t, real>> triple{
      {0, 1.0f}, {1, -1.5f}, {7, 2.0f}};
  b.set_row(1, single);
  b.set_row(3, triple);
  const CsrMatrix a = b.assemble();
  const CompressedCsr c = compress_csr(a, 2, ValueStorage::Fp32);
  EXPECT_EQ(c.nnz(), a.nnz());
  const CsrMatrix back = decompress_csr(c);
  EXPECT_EQ(back.num_rows, a.num_rows);
  EXPECT_EQ(back.num_cols, a.num_cols);
  ASSERT_EQ(back.displ.size(), a.displ.size());
  for (std::size_t i = 0; i < a.displ.size(); ++i)
    EXPECT_EQ(back.displ[i], a.displ[i]);
  for (std::size_t i = 0; i < a.ind.size(); ++i) {
    EXPECT_EQ(back.ind[i], a.ind[i]);
    EXPECT_FLOAT_EQ(back.val[i], a.val[i]);  // fp32 storage is lossless
  }
}

TEST(Varint, CompressedCsrRoundTripsRandomMatrices) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const CsrMatrix a = testutil::random_csr(64, 96, 0.08, seed);
    const CsrMatrix back =
        decompress_csr(compress_csr(a, kCsrPartsize, ValueStorage::Fp32));
    ASSERT_EQ(back.ind.size(), a.ind.size());
    for (std::size_t i = 0; i < a.ind.size(); ++i) {
      EXPECT_EQ(back.ind[i], a.ind[i]);
      EXPECT_FLOAT_EQ(back.val[i], a.val[i]);
    }
  }
}

TEST(Varint, CompressedCsrDetectsCorruptIndexStream) {
  const CsrMatrix a = testutil::random_csr(32, 32, 0.2, 7);
  CompressedCsr c = compress_csr(a, 8, ValueStorage::Bf16);
  ASSERT_FALSE(c.ind_bytes.empty());
  // Flip a stream byte to a continuation byte at the end of a partition:
  // validation must flag the damage instead of decoding garbage.
  CompressedCsr tampered = c;
  tampered.ind_bytes.back() |= 0x80u;
  EXPECT_THROW(tampered.validate(), IoError);
  // Truncating the stream breaks the offset-table invariant.
  CompressedCsr shorter = c;
  shorter.ind_bytes.pop_back();
  EXPECT_THROW(shorter.validate(), InvariantError);
}

}  // namespace
}  // namespace memxct::sparse
