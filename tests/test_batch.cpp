// BatchReconstructor: bitwise parity with the single-slice path, worker
// invariance, bounded-queue backpressure, per-slice fault isolation, and
// report accounting.
#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "batch/batch.hpp"
#include "common/rng.hpp"
#include "core/reconstructor.hpp"
#include "phantom/phantom.hpp"

namespace {

using namespace memxct;

struct Fixture {
  geometry::Geometry g;
  core::Config config;
  std::vector<AlignedVector<real>> slices;
};

// A small phantom geometry with S slightly different sinograms (scaled
// copies, so every slice has a distinct exact solution).
Fixture make_fixture(int num_slices, core::Config config = {}) {
  Fixture f;
  f.g = geometry::make_geometry(24, 16);
  config.iterations = 6;
  f.config = config;
  const auto image = phantom::shepp_logan(16);
  const auto base = phantom::forward_project(f.g, image);
  for (int s = 0; s < num_slices; ++s) {
    AlignedVector<real> sino(base.begin(), base.end());
    const real scale = real{1} + real(0.05) * static_cast<real>(s);
    for (auto& v : sino) v *= scale;
    f.slices.push_back(std::move(sino));
  }
  return f;
}

std::vector<batch::SliceResult> run_batch(const core::Reconstructor& recon,
                                          const Fixture& f,
                                          batch::BatchOptions opt) {
  batch::BatchReconstructor engine(recon, opt);
  for (const auto& sino : f.slices) engine.submit(sino);
  return engine.wait_all();
}

TEST(Batch, MatchesSingleSliceReconstructorBitwise) {
  const auto f = make_fixture(4);
  const core::Reconstructor recon(f.g, f.config);
  const auto results = run_batch(recon, f, {.workers = 2});
  ASSERT_EQ(results.size(), f.slices.size());
  for (std::size_t s = 0; s < f.slices.size(); ++s) {
    EXPECT_EQ(results[s].slice, static_cast<int>(s));
    ASSERT_EQ(results[s].status, batch::SliceStatus::Ok);
    const auto single = recon.reconstruct(f.slices[s]);
    ASSERT_EQ(single.image.size(), results[s].image.size());
    EXPECT_EQ(0, std::memcmp(single.image.data(), results[s].image.data(),
                             single.image.size() * sizeof(real)))
        << "slice " << s << " differs from the single-slice path";
    EXPECT_EQ(single.solve.iterations, results[s].solve.iterations);
  }
}

TEST(Batch, WorkerCountDoesNotChangeResults) {
  const auto f = make_fixture(6);
  const core::Reconstructor recon(f.g, f.config);
  const auto ref = run_batch(recon, f, {.workers = 1});
  for (const int workers : {2, 4}) {
    const auto got = run_batch(recon, f, {.workers = workers});
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t s = 0; s < ref.size(); ++s) {
      ASSERT_EQ(got[s].status, batch::SliceStatus::Ok);
      ASSERT_EQ(ref[s].image.size(), got[s].image.size());
      EXPECT_EQ(0, std::memcmp(ref[s].image.data(), got[s].image.data(),
                               ref[s].image.size() * sizeof(real)))
          << "slice " << s << " differs between K=1 and K=" << workers;
    }
  }
}

TEST(Batch, PerSliceFaultIsolation) {
  core::Config config;
  config.ingest.policy = resil::IngestPolicy::Reject;
  auto f = make_fixture(5, config);
  // Poison slice 2 with a NaN: under Reject it must fail alone.
  f.slices[2][7] = std::nanf("");
  const core::Reconstructor recon(f.g, f.config);
  const auto results = run_batch(recon, f, {.workers = 2});
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t s = 0; s < results.size(); ++s) {
    if (s == 2) {
      EXPECT_EQ(results[s].status, batch::SliceStatus::IngestRejected);
      EXPECT_FALSE(results[s].error.empty());
      EXPECT_TRUE(results[s].image.empty());
    } else {
      EXPECT_EQ(results[s].status, batch::SliceStatus::Ok)
          << "healthy slice " << s << " was poisoned by slice 2";
      EXPECT_FALSE(results[s].image.empty());
    }
  }
}

TEST(Batch, ReportCountsAndThroughput) {
  const auto f = make_fixture(6);
  const core::Reconstructor recon(f.g, f.config);
  batch::BatchReconstructor engine(recon, {.workers = 2, .queue_capacity = 3});
  for (const auto& sino : f.slices) engine.submit(sino);
  const auto results = engine.wait_all();
  ASSERT_EQ(results.size(), 6u);
  const auto& rep = engine.report();
  EXPECT_EQ(rep.slices, 6);
  EXPECT_EQ(rep.ok, 6);
  EXPECT_EQ(rep.failed + rep.diverged + rep.ingest_rejected, 0);
  EXPECT_EQ(rep.workers, 2);
  EXPECT_GT(rep.wall_seconds, 0.0);
  EXPECT_GT(rep.slices_per_second, 0.0);
  EXPECT_GT(rep.slice_seconds_sum, 0.0);
  EXPECT_GE(rep.solve_seconds_sum, 0.0);
  EXPECT_GT(rep.queue_high_water, 0);
  EXPECT_LE(rep.queue_high_water, 3);  // bounded queue never exceeded
  EXPECT_GE(rep.preprocess_seconds, 0.0);
  EXPECT_NEAR(rep.per_slice_wall(), rep.wall_seconds / 6.0, 1e-12);
  EXPECT_FALSE(rep.summary().empty());
}

TEST(Batch, BackpressureKeepsQueueBounded) {
  const auto f = make_fixture(8);
  const core::Reconstructor recon(f.g, f.config);
  batch::BatchReconstructor engine(recon, {.workers = 1, .queue_capacity = 1});
  for (const auto& sino : f.slices) engine.submit(sino);  // blocks, not grows
  const auto results = engine.wait_all();
  ASSERT_EQ(results.size(), 8u);
  EXPECT_LE(engine.report().queue_high_water, 1);
  for (const auto& r : results) EXPECT_EQ(r.status, batch::SliceStatus::Ok);
}

TEST(Batch, KeepImagesFalseDropsPixelsButKeepsStats) {
  const auto f = make_fixture(3);
  const core::Reconstructor recon(f.g, f.config);
  const auto results =
      run_batch(recon, f, {.workers = 2, .keep_images = false});
  for (const auto& r : results) {
    EXPECT_EQ(r.status, batch::SliceStatus::Ok);
    EXPECT_TRUE(r.image.empty());
    EXPECT_EQ(r.solve.iterations, 6);
    EXPECT_GT(r.seconds, 0.0);
  }
}

TEST(Batch, EngineIsReusableAcrossRounds) {
  const auto f = make_fixture(4);
  const core::Reconstructor recon(f.g, f.config);
  batch::BatchReconstructor engine(recon, {.workers = 2});
  for (const auto& sino : f.slices) engine.submit(sino);
  const auto first = engine.wait_all();
  ASSERT_EQ(first.size(), 4u);
  // Second round restarts tickets at 0 and produces a fresh report.
  engine.submit(f.slices[0]);
  engine.submit(f.slices[1]);
  const auto second = engine.wait_all();
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].slice, 0);
  EXPECT_EQ(second[1].slice, 1);
  EXPECT_EQ(engine.report().slices, 2);
  EXPECT_EQ(0, std::memcmp(first[0].image.data(), second[0].image.data(),
                           first[0].image.size() * sizeof(real)));
}

TEST(Batch, RejectsWrongSizeSinogramAtSubmit) {
  const auto f = make_fixture(1);
  const core::Reconstructor recon(f.g, f.config);
  batch::BatchReconstructor engine(recon, {.workers = 1});
  AlignedVector<real> wrong(7, real{0});
  EXPECT_THROW((void)engine.submit(wrong), InvalidArgument);
  engine.submit(f.slices[0]);
  const auto results = engine.wait_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, batch::SliceStatus::Ok);
}

TEST(Batch, RequiresSerialOperatorPath) {
  auto f = make_fixture(1);
  f.config.num_ranks = 4;
  const core::Reconstructor recon(f.g, f.config);
  EXPECT_THROW(batch::BatchReconstructor(recon, {.workers = 2}),
               InvalidArgument);
}

TEST(Batch, RejectsNonPositiveWorkerCount) {
  const auto f = make_fixture(1);
  const core::Reconstructor recon(f.g, f.config);
  EXPECT_THROW(batch::BatchReconstructor(recon, {.workers = 0}),
               InvalidArgument);
}

// Full-pipeline determinism under OpenMP thread-count changes: the same
// sinogram reconstructed with 1, 2, and max threads must be bitwise
// identical (static plans + deterministic reductions end to end).
TEST(Batch, ReconstructionIsBitwiseThreadCountInvariant) {
  const int saved = omp_get_max_threads();
  const auto f = make_fixture(1);
  const core::Reconstructor recon(f.g, f.config);
  omp_set_num_threads(1);
  const auto ref = recon.reconstruct(f.slices[0]);
  for (const int threads : {2, saved}) {
    omp_set_num_threads(threads);
    const auto got = recon.reconstruct(f.slices[0]);
    ASSERT_EQ(ref.image.size(), got.image.size());
    EXPECT_EQ(0, std::memcmp(ref.image.data(), got.image.data(),
                             ref.image.size() * sizeof(real)))
        << "reconstruction differs at " << threads << " threads";
  }
  omp_set_num_threads(saved);
}

}  // namespace
