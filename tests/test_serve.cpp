// serve::Server + OperatorRegistry + RequestScheduler: LRU semantics,
// single-flight dedup, hard byte budget, disk-tier fallback, bitwise parity
// with the single-slice Reconstructor, typed overload rejection, deadlines,
// and cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "core/opkey.hpp"
#include "core/reconstructor.hpp"
#include "phantom/phantom.hpp"
#include "serve/server.hpp"

namespace {

namespace fs = std::filesystem;
using namespace memxct;

struct ServeFixture {
  std::vector<geometry::Geometry> geoms;
  std::vector<AlignedVector<real>> sinos;
  core::Config config;
};

// Small phantom geometries that key distinct operators (different angle
// counts over the same 16x16 tomogram), one exact sinogram each.
ServeFixture make_fixture(int num_geometries, core::Config config = {}) {
  ServeFixture f;
  config.iterations = 6;
  f.config = config;
  const auto image = phantom::shepp_logan(16);
  for (int g = 0; g < num_geometries; ++g) {
    const auto geom =
        geometry::make_geometry(static_cast<idx_t>(24 + 8 * g), 16);
    f.sinos.push_back(phantom::forward_project(geom, image));
    f.geoms.push_back(geom);
  }
  return f;
}

// Per-operator footprint as the registry will charge it.
std::int64_t op_bytes(const geometry::Geometry& g,
                      const core::Config& config) {
  const core::Reconstructor recon(g, config);
  return recon.serial_op()->bytes();
}

// A scratch directory that cleans up after itself.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

// --- OperatorRegistry -------------------------------------------------------

TEST(Registry, HitMissAndLruEvictionOrder) {
  const auto f = make_fixture(3);
  const std::int64_t b1 = op_bytes(f.geoms[1], f.config);
  const std::int64_t b2 = op_bytes(f.geoms[2], f.config);
  const auto key = [&](int g) {
    return core::operator_key(f.geoms[static_cast<std::size_t>(g)], f.config)
        .text;
  };

  // Budget fits any two operators together (operator bytes grow with the
  // angle count, so b1 + b2 is the largest pair); adding a third must evict
  // exactly the least recently used.
  serve::OperatorRegistry registry({.byte_budget = b1 + b2});
  const auto l0 = registry.acquire(f.geoms[0], f.config);
  const auto l1 = registry.acquire(f.geoms[1], f.config);
  EXPECT_FALSE(l0.hit);
  EXPECT_FALSE(l1.hit);
  EXPECT_GT(l0.build_seconds, 0.0);
  EXPECT_EQ(registry.resident_keys(),
            (std::vector<std::string>{key(0), key(1)}));

  // Touching 0 makes 1 the LRU victim.
  const auto l0again = registry.acquire(f.geoms[0], f.config);
  EXPECT_TRUE(l0again.hit);
  EXPECT_EQ(l0again.build_seconds, 0.0) << "a hit pays zero setup";
  EXPECT_EQ(l0again.recon.get(), l0.recon.get())
      << "hit must share the same bundle";
  EXPECT_EQ(registry.resident_keys(),
            (std::vector<std::string>{key(1), key(0)}));

  (void)registry.acquire(f.geoms[2], f.config);
  EXPECT_EQ(registry.resident_keys(),
            (std::vector<std::string>{key(0), key(2)}))
      << "operator 1 (LRU) must be the eviction victim";

  const auto s = registry.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 3);
  EXPECT_EQ(s.builds, 3);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.evicted_bytes, b1);
  EXPECT_EQ(s.resident_operators, 2);
}

TEST(Registry, SolverConfigDoesNotFragmentTheKey) {
  const auto f = make_fixture(1);
  serve::OperatorRegistry registry(serve::RegistryOptions{});
  (void)registry.acquire(f.geoms[0], f.config);
  core::Config other = f.config;
  other.solver = core::SolverKind::SIRT;
  other.iterations = 99;
  const auto lease = registry.acquire(f.geoms[0], other);
  EXPECT_TRUE(lease.hit)
      << "requests differing only in solver settings share one operator";
}

TEST(Registry, SingleFlightDedupUnderContention) {
  const auto f = make_fixture(1);
  serve::OperatorRegistry registry(serve::RegistryOptions{});
  constexpr int kThreads = 8;
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const auto lease = registry.acquire(f.geoms[0], f.config);
      if (lease.hit) hits.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  const auto s = registry.stats();
  EXPECT_EQ(s.builds, 1) << "concurrent misses must collapse to one build";
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, kThreads - 1);
  EXPECT_EQ(hits.load(), kThreads - 1);
}

TEST(Registry, ByteBudgetIsNeverExceeded) {
  const auto f = make_fixture(3);
  std::int64_t largest = 0;
  for (const auto& g : f.geoms)
    largest = std::max(largest, op_bytes(g, f.config));

  // Budget holds exactly one (the largest) operator: cycling through three
  // geometries keeps evicting, and the resident total must never pass it.
  serve::OperatorRegistry registry({.byte_budget = largest});
  for (int round = 0; round < 2; ++round) {
    for (const auto& g : f.geoms) {
      (void)registry.acquire(g, f.config);
      const auto s = registry.stats();
      EXPECT_LE(s.resident_bytes, largest);
      EXPECT_LE(s.peak_resident_bytes, largest);
      EXPECT_LE(s.resident_operators, 1);
    }
  }
  EXPECT_EQ(registry.stats().uncacheable, 0);
}

TEST(Registry, OversizedOperatorIsServedButNotRetained) {
  const auto f = make_fixture(1);
  serve::OperatorRegistry registry({.byte_budget = 1});  // nothing fits
  const auto lease = registry.acquire(f.geoms[0], f.config);
  ASSERT_NE(lease.recon, nullptr) << "pass-through still serves the request";
  const auto s = registry.stats();
  EXPECT_EQ(s.uncacheable, 1);
  EXPECT_EQ(s.resident_operators, 0);
  EXPECT_EQ(s.resident_bytes, 0);
  EXPECT_TRUE(registry.resident_keys().empty());
  // The next acquire of the same key misses again (never cached).
  EXPECT_FALSE(registry.acquire(f.geoms[0], f.config).hit);
}

TEST(Registry, EvictedOperatorRebuildsFromDiskTier) {
  const TempDir tmp("memxct_serve_disk_tier");
  const auto f = make_fixture(2);
  const std::int64_t b0 = op_bytes(f.geoms[0], f.config);
  const std::int64_t b1 = op_bytes(f.geoms[1], f.config);

  // Budget holds one operator; acquiring the other evicts it from memory,
  // but its validated trace stays on disk.
  serve::OperatorRegistry registry(
      {.byte_budget = std::max(b0, b1),
       .disk_cache_dir = tmp.path.string()});
  const auto cold = registry.acquire(f.geoms[0], f.config);
  EXPECT_FALSE(cold.disk_hit) << "first build traces from scratch";
  (void)registry.acquire(f.geoms[1], f.config);  // evicts operator 0

  const auto rebuilt = registry.acquire(f.geoms[0], f.config);
  EXPECT_FALSE(rebuilt.hit) << "operator 0 was evicted from memory";
  EXPECT_TRUE(rebuilt.disk_hit)
      << "rebuild must load the traced matrix from the disk tier";
  const auto s = registry.stats();
  EXPECT_EQ(s.evictions, 2);
  EXPECT_EQ(s.disk_tier_hits, 1);
}

TEST(Registry, RejectsDistributedConfigs) {
  const auto f = make_fixture(1);
  serve::OperatorRegistry registry(serve::RegistryOptions{});
  core::Config distributed = f.config;
  distributed.num_ranks = 4;
  EXPECT_THROW((void)registry.acquire(f.geoms[0], distributed),
               InvalidArgument);
}

// --- Server -----------------------------------------------------------------

TEST(Serve, ServedImagesMatchReconstructorBitwise) {
  const auto f = make_fixture(2);
  // Ground truth: the plain single-slice path, per geometry.
  std::vector<std::vector<real>> expected;
  for (std::size_t g = 0; g < f.geoms.size(); ++g) {
    const core::Reconstructor recon(f.geoms[g], f.config);
    expected.push_back(recon.reconstruct(f.sinos[g]).image);
  }

  for (const int workers : {1, 2, 4}) {
    serve::Server server({.workers = workers, .queue_capacity = 16});
    std::vector<std::int64_t> ids;
    for (int i = 0; i < 8; ++i) {
      const std::size_t g = static_cast<std::size_t>(i) % f.geoms.size();
      ids.push_back(server.submit(f.geoms[g], f.config, f.sinos[g]));
    }
    for (int i = 0; i < 8; ++i) {
      const std::size_t g = static_cast<std::size_t>(i) % f.geoms.size();
      const auto r = server.wait(ids[static_cast<std::size_t>(i)]);
      ASSERT_EQ(r.status, serve::RequestStatus::Ok)
          << "request " << i << " at " << workers << " workers: " << r.error;
      ASSERT_EQ(r.image.size(), expected[g].size());
      EXPECT_EQ(0, std::memcmp(r.image.data(), expected[g].data(),
                               expected[g].size() * sizeof(real)))
          << "request " << i << " at " << workers
          << " workers differs from Reconstructor::reconstruct";
      EXPECT_EQ(r.solve.iterations, 6);
    }
  }
}

TEST(Serve, RegistryAmortizesAcrossRequests) {
  const auto f = make_fixture(2);
  serve::Server server({.workers = 2, .queue_capacity = 12});
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 12; ++i) {
    const std::size_t g = static_cast<std::size_t>(i) % 2;
    ids.push_back(server.submit(f.geoms[g], f.config, f.sinos[g]));
  }
  int hit_requests = 0;
  for (const auto id : ids) {
    const auto r = server.wait(id);
    ASSERT_EQ(r.status, serve::RequestStatus::Ok) << r.error;
    if (r.registry_hit) {
      ++hit_requests;
      EXPECT_EQ(r.setup_seconds, 0.0) << "registry hits skip preprocessing";
    }
  }
  EXPECT_GE(hit_requests, 10) << "only the two cold builds may miss";
  const auto m = server.snapshot();
  EXPECT_EQ(m.registry.builds, 2);
  EXPECT_GE(m.registry.hit_rate(), 10.0 / 12.0);
}

TEST(Serve, QueueFullRejectionIsTypedAndCounted) {
  serve::RequestScheduler scheduler({.queue_capacity = 1});
  auto request = [] {
    auto s = std::make_shared<serve::RequestState>();
    s->options.priority = serve::Priority::Bulk;
    return s;
  };
  scheduler.admit(request());
  EXPECT_THROW(scheduler.admit(request()), serve::QueueFullError);
  try {
    scheduler.admit(request());
  } catch (const serve::QueueFullError& e) {
    EXPECT_EQ(e.priority, serve::Priority::Bulk);
  }
  EXPECT_EQ(scheduler.rejected_queue_full(serve::Priority::Bulk), 2);
  EXPECT_EQ(scheduler.rejected_queue_full(serve::Priority::Normal), 0);
  // The admitted request still drains.
  scheduler.close();
  EXPECT_TRUE(scheduler.next().has_value());
  EXPECT_FALSE(scheduler.next().has_value());
}

TEST(Serve, InfeasibleDeadlineIsRejectedAtAdmission) {
  serve::RequestScheduler scheduler({.queue_capacity = 4});
  scheduler.observe_service_seconds(1.0);  // warmed estimate: 1 s per request
  auto s = std::make_shared<serve::RequestState>();
  s->options.deadline_seconds = 1e-6;
  try {
    scheduler.admit(s);
    FAIL() << "expected DeadlineInfeasibleError";
  } catch (const serve::DeadlineInfeasibleError& e) {
    EXPECT_DOUBLE_EQ(e.deadline_seconds, 1e-6);
    EXPECT_DOUBLE_EQ(e.estimated_seconds, 1.0);
  }
  EXPECT_EQ(scheduler.rejected_infeasible(serve::Priority::Normal), 1);
  // A generous deadline against the same estimate is admitted.
  auto ok = std::make_shared<serve::RequestState>();
  ok->options.deadline_seconds = 10.0;
  EXPECT_NO_THROW(scheduler.admit(ok));
}

TEST(Serve, ServerRejectsInfeasibleDeadlineAfterWarmup) {
  const auto f = make_fixture(1);
  serve::Server server({.workers = 1, .queue_capacity = 4});
  // Warm the service-time estimate with one completed request.
  const auto id = server.submit(f.geoms[0], f.config, f.sinos[0]);
  ASSERT_EQ(server.wait(id).status, serve::RequestStatus::Ok);
  ASSERT_GT(server.snapshot().estimated_service_seconds, 0.0);
  EXPECT_THROW((void)server.submit(f.geoms[0], f.config, f.sinos[0],
                                   {.deadline_seconds = 1e-9}),
               serve::DeadlineInfeasibleError);
}

TEST(Serve, DeadlineBurnedInQueueOrSolveIsExceededNotFailed) {
  auto f = make_fixture(1);
  serve::Server server({.workers = 1, .queue_capacity = 8});
  // Occupy the single worker so the deadline request waits in the queue
  // past its (tiny) budget.
  core::Config blocker = f.config;
  blocker.solver = core::SolverKind::SIRT;
  blocker.iterations = 2000;
  const auto blocker_id = server.submit(f.geoms[0], blocker, f.sinos[0]);
  const auto late_id = server.submit(f.geoms[0], f.config, f.sinos[0],
                                     {.deadline_seconds = 1e-6});
  EXPECT_EQ(server.wait(blocker_id).status, serve::RequestStatus::Ok);
  const auto late = server.wait(late_id);
  EXPECT_EQ(late.status, serve::RequestStatus::DeadlineExceeded);
  EXPECT_TRUE(late.image.empty());

  EXPECT_EQ(server.snapshot()
                .priority[static_cast<std::size_t>(serve::Priority::Normal)]
                .deadline_exceeded,
            1);

  // Mid-solve: a long fixed-iteration solve with a deadline it cannot make
  // stops cooperatively at an iteration boundary. A fresh server keeps the
  // feasibility estimate cold so the short deadline is admitted.
  serve::Server fresh({.workers = 1, .queue_capacity = 4});
  core::Config longrun = f.config;
  longrun.solver = core::SolverKind::SIRT;
  longrun.iterations = 50'000'000;
  const auto mid = fresh.wait(fresh.submit(f.geoms[0], longrun, f.sinos[0],
                                           {.deadline_seconds = 0.05}));
  EXPECT_EQ(mid.status, serve::RequestStatus::DeadlineExceeded);
  EXPECT_TRUE(mid.solve.cancelled);
  EXPECT_LT(mid.solve.iterations, 50'000'000);
  EXPECT_EQ(fresh.snapshot()
                .priority[static_cast<std::size_t>(serve::Priority::Normal)]
                .deadline_exceeded,
            1);
}

TEST(Serve, ExplicitCancelOfQueuedRequest) {
  auto f = make_fixture(1);
  serve::Server server({.workers = 1, .queue_capacity = 8});
  core::Config blocker = f.config;
  blocker.solver = core::SolverKind::SIRT;
  blocker.iterations = 2000;
  const auto blocker_id = server.submit(f.geoms[0], blocker, f.sinos[0]);
  const auto victim_id = server.submit(f.geoms[0], f.config, f.sinos[0]);
  EXPECT_TRUE(server.cancel(victim_id));
  EXPECT_FALSE(server.cancel(victim_id + 1000)) << "unknown id";
  EXPECT_EQ(server.wait(blocker_id).status, serve::RequestStatus::Ok);
  EXPECT_EQ(server.wait(victim_id).status, serve::RequestStatus::Cancelled);
  EXPECT_FALSE(server.cancel(victim_id)) << "terminal requests cannot cancel";
}

TEST(Serve, SubmitValidatesInput) {
  const auto f = make_fixture(1);
  serve::Server server({.workers = 1});
  AlignedVector<real> wrong(7, real{0});
  EXPECT_THROW((void)server.submit(f.geoms[0], f.config, wrong),
               InvalidArgument);
  core::Config distributed = f.config;
  distributed.num_ranks = 4;
  EXPECT_THROW((void)server.submit(f.geoms[0], distributed, f.sinos[0]),
               InvalidArgument);
  EXPECT_THROW((void)server.submit(f.geoms[0], f.config, f.sinos[0],
                                   {.deadline_seconds = -1.0}),
               InvalidArgument);
  EXPECT_THROW(serve::Server({.workers = 0}), InvalidArgument);
}

TEST(Serve, WaitConsumesExactlyOnce) {
  const auto f = make_fixture(1);
  serve::Server server({.workers = 1});
  const auto id = server.submit(f.geoms[0], f.config, f.sinos[0]);
  EXPECT_EQ(server.wait(id).status, serve::RequestStatus::Ok);
  EXPECT_THROW((void)server.wait(id), InvalidArgument);
  EXPECT_THROW((void)server.wait(id + 7), InvalidArgument);
}

TEST(Serve, PerRequestFaultIsolation) {
  core::Config config;
  config.ingest.policy = resil::IngestPolicy::Reject;
  auto f = make_fixture(1, config);
  serve::Server server({.workers = 2, .queue_capacity = 8});
  AlignedVector<real> poisoned = f.sinos[0];
  poisoned[3] = std::numeric_limits<real>::quiet_NaN();
  const auto bad = server.submit(f.geoms[0], f.config, poisoned);
  const auto good = server.submit(f.geoms[0], f.config, f.sinos[0]);
  const auto bad_result = server.wait(bad);
  EXPECT_EQ(bad_result.status, serve::RequestStatus::IngestRejected);
  EXPECT_FALSE(bad_result.error.empty());
  const auto good_result = server.wait(good);
  EXPECT_EQ(good_result.status, serve::RequestStatus::Ok)
      << "healthy request poisoned by its neighbour";
  EXPECT_FALSE(good_result.image.empty());
}

TEST(Serve, MetricsAccountForEveryOutcome) {
  const auto f = make_fixture(2);
  serve::Server server({.workers = 2, .queue_capacity = 6});
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const std::size_t g = static_cast<std::size_t>(i) % 2;
    ids.push_back(server.submit(
        f.geoms[g], f.config, f.sinos[g],
        {.priority = static_cast<serve::Priority>(i % serve::kNumPriorities)}));
  }
  for (const auto id : ids)
    ASSERT_EQ(server.wait(id).status, serve::RequestStatus::Ok);
  const auto m = server.snapshot();
  EXPECT_EQ(m.submitted, 6);
  EXPECT_EQ(m.completed, 6);
  EXPECT_EQ(m.rejected(), 0);
  EXPECT_EQ(m.queue_depth, 0);
  EXPECT_LE(m.queue_high_water, 6);
  EXPECT_GT(m.solve_seconds_sum, 0.0);
  for (int p = 0; p < serve::kNumPriorities; ++p) {
    const auto& pm = m.priority[static_cast<std::size_t>(p)];
    EXPECT_EQ(pm.submitted, 2);
    EXPECT_EQ(pm.ok, 2);
    EXPECT_EQ(pm.latency.count(), 2);
    EXPECT_GT(pm.latency.max_seconds(), 0.0);
    EXPECT_GT(pm.latency.quantile(0.5), 0.0);
  }
  EXPECT_FALSE(m.summary().empty());
}

TEST(Serve, ShutdownDrainsAdmittedRequests) {
  const auto f = make_fixture(1);
  serve::Server server({.workers = 2, .queue_capacity = 8});
  std::vector<std::int64_t> ids;
  for (int i = 0; i < 4; ++i)
    ids.push_back(server.submit(f.geoms[0], f.config, f.sinos[0]));
  server.shutdown();
  EXPECT_THROW((void)server.submit(f.geoms[0], f.config, f.sinos[0]),
               InvalidArgument)
      << "a shut-down server admits nothing";
  for (const auto id : ids)
    EXPECT_EQ(server.wait(id).status, serve::RequestStatus::Ok)
        << "admitted requests must drain through shutdown";
}

}  // namespace
