// Tests for block-ELL (GPU layout, Section 3.1.4) and matrix-level ELL.
#include <gtest/gtest.h>

#include "sparse/ell.hpp"
#include "test_util.hpp"

namespace memxct::sparse {
namespace {

struct EllCase {
  idx_t rows, cols;
  double density;
  idx_t block_rows;
};

class EllSweep : public ::testing::TestWithParam<EllCase> {};

TEST_P(EllSweep, BlockEllMatchesReference) {
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 21);
  const EllBlockMatrix e = to_ell_block(a, param.block_rows);
  const auto x = testutil::random_vector(param.cols, 22);
  AlignedVector<real> expected(static_cast<std::size_t>(param.rows));
  AlignedVector<real> actual(static_cast<std::size_t>(param.rows), -5.0f);
  spmv_reference(a, x, expected);
  spmv_ell(e, x, actual);
  EXPECT_LT(testutil::rel_error(actual, expected), 1e-5);
}

TEST_P(EllSweep, MatrixEllMatchesReference) {
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 23);
  const EllBlockMatrix e = to_ell_matrix(a);
  const auto x = testutil::random_vector(param.cols, 24);
  AlignedVector<real> expected(static_cast<std::size_t>(param.rows));
  AlignedVector<real> actual(static_cast<std::size_t>(param.rows));
  spmv_reference(a, x, expected);
  spmv_ell(e, x, actual);
  EXPECT_LT(testutil::rel_error(actual, expected), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EllSweep,
    ::testing::Values(EllCase{1, 1, 1.0, 4}, EllCase{16, 16, 0.5, 4},
                      EllCase{100, 80, 0.1, 32}, EllCase{63, 100, 0.15, 64},
                      EllCase{129, 65, 0.05, 16},
                      EllCase{200, 200, 0.02, 64},
                      EllCase{40, 40, 0.0, 8}));

TEST(Ell, PartitionLevelPaddingBeatsMatrixLevel) {
  // The paper's point versus cuSPARSE: padding at partition level wastes
  // fewer redundant FMAs than padding to the global maximum width when row
  // lengths are skewed.
  CsrBuilder b(64, 64);
  std::vector<std::pair<idx_t, real>> heavy;
  for (idx_t c = 0; c < 64; ++c) heavy.emplace_back(c, 1.0f);
  b.set_row(0, heavy);  // one 64-wide row
  const std::vector<std::pair<idx_t, real>> light{{0, 1.0f}};
  for (idx_t r = 1; r < 64; ++r) b.set_row(r, light);
  const CsrMatrix a = b.assemble();
  const EllBlockMatrix block = to_ell_block(a, 8);
  const EllBlockMatrix matrix = to_ell_matrix(a);
  EXPECT_LT(block.padded_nnz(), matrix.padded_nnz());
  // Matrix-level pads all 64 rows to width 64.
  EXPECT_EQ(matrix.padded_nnz(), 64 * 64);
  // Block-level pads only the first 8-row slice to 64; others to 1.
  EXPECT_EQ(block.padded_nnz(), 8 * 64 + 7 * 8 * 1);
}

TEST(Ell, PaddedEntriesAreZeroValueIndexZero) {
  const CsrMatrix a = testutil::random_csr(10, 10, 0.2, 31);
  const EllBlockMatrix e = to_ell_block(a, 4);
  // Count padded slots: they must carry val 0 (the redundant multiply) and
  // a valid index (0) to avoid branching.
  nnz_t nonzero_vals = 0;
  for (std::size_t i = 0; i < e.val.size(); ++i) {
    EXPECT_GE(e.ind[i], 0);
    EXPECT_LT(e.ind[i], e.num_cols);
    if (e.val[i] != 0.0f) ++nonzero_vals;
  }
  EXPECT_LE(nonzero_vals, a.nnz());
}

TEST(Ell, WorkCountsPadding) {
  const CsrMatrix a = testutil::random_csr(32, 32, 0.1, 37);
  const EllBlockMatrix e = to_ell_block(a, 8);
  const auto work = ell_work(e);
  EXPECT_EQ(work.nnz, e.padded_nnz());
  EXPECT_GE(e.padded_nnz(), a.nnz());
}

}  // namespace
}  // namespace memxct::sparse
