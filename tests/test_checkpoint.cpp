// Tests for solver checkpoint/restart and divergence recovery.
//
// The acceptance bar for restart is bitwise equality: a solve interrupted
// at iteration k and resumed from its checkpoint must produce exactly the
// same iterate and history as an uninterrupted run, because the snapshot
// captures the complete recursion state and the kernels are deterministic.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "solve/cgls.hpp"
#include "solve/gd.hpp"
#include "solve/sirt.hpp"
#include "sparse/spmv.hpp"
#include "sparse/transpose.hpp"
#include "test_util.hpp"

namespace memxct::solve {
namespace {

/// Operator backed by an explicit CSR pair.
class CsrOperator final : public LinearOperator {
 public:
  explicit CsrOperator(sparse::CsrMatrix a)
      : a_(std::move(a)), at_(sparse::transpose(a_)) {}
  idx_t num_rows() const override { return a_.num_rows; }
  idx_t num_cols() const override { return a_.num_cols; }
  void apply(std::span<const real> x, std::span<real> y) const override {
    sparse::spmv_csr(a_, x, y);
  }
  void apply_transpose(std::span<const real> y,
                       std::span<real> x) const override {
    sparse::spmv_csr(at_, y, x);
  }

 private:
  sparse::CsrMatrix a_;
  sparse::CsrMatrix at_;
};

/// Wrapper that corrupts the forward projection with NaN from the Nth
/// apply on — a stand-in for an undetected data/memory fault mid-solve.
class PoisoningOperator final : public LinearOperator {
 public:
  PoisoningOperator(const LinearOperator& inner, int poison_after)
      : inner_(inner), poison_after_(poison_after) {}
  idx_t num_rows() const override { return inner_.num_rows(); }
  idx_t num_cols() const override { return inner_.num_cols(); }
  void apply(std::span<const real> x, std::span<real> y) const override {
    inner_.apply(x, y);
    if (++applies_ >= poison_after_)
      y[0] = std::numeric_limits<real>::quiet_NaN();
  }
  void apply_transpose(std::span<const real> y,
                       std::span<real> x) const override {
    inner_.apply_transpose(y, x);
  }

 private:
  const LinearOperator& inner_;
  int poison_after_;
  mutable int applies_ = 0;
};

sparse::CsrMatrix well_conditioned(idx_t rows, idx_t cols,
                                   std::uint64_t seed) {
  auto a = testutil::random_csr(rows, cols, 0.1, seed);
  sparse::CsrBuilder b(rows, cols);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < rows; ++r) {
    entries.clear();
    for (nnz_t k = a.displ[r]; k < a.displ[r + 1]; ++k)
      entries.emplace_back(a.ind[k], a.val[k] * 0.1f);
    if (r < cols) entries.emplace_back(r, 3.0f);
    b.set_row(r, entries);
  }
  return b.assemble();
}

// SIRT's R/C scaling assumes nonnegative weights (true for CT intersection
// lengths); its tests use a nonnegative system so the iteration is stable.
sparse::CsrMatrix nonneg_system(idx_t rows, idx_t cols, std::uint64_t seed) {
  Rng rng(seed);
  sparse::CsrBuilder b(rows, cols);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < rows; ++r) {
    entries.clear();
    for (idx_t c = 0; c < cols; ++c)
      if (rng.uniform() < 0.15)
        entries.emplace_back(c, static_cast<real>(rng.uniform(0.1, 1.0)));
    b.set_row(r, entries);
  }
  return b.assemble();
}

/// Scratch checkpoint path, removed before and after each use.
class CheckpointFile {
 public:
  explicit CheckpointFile(const std::string& name)
      : path_("/tmp/memxct_ckpt_" + name + "_" + std::to_string(::getpid())) {
    std::remove(path_.c_str());
  }
  ~CheckpointFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

void expect_same_history(const SolveResult& a, const SolveResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].iteration, b.history[i].iteration);
    // Bitwise equality, not tolerance: the resumed run replays the exact
    // arithmetic of the uninterrupted one.
    EXPECT_EQ(a.history[i].residual_norm, b.history[i].residual_norm);
    EXPECT_EQ(a.history[i].solution_norm, b.history[i].solution_norm);
  }
}

TEST(Checkpoint, CglsResumeIsBitwiseIdentical) {
  const auto a = well_conditioned(60, 40, 3);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 4);
  CheckpointFile file("cgls");

  CglsOptions plain;
  plain.max_iterations = 12;
  const auto straight = cgls(op, y, plain);

  CglsOptions ck = plain;
  ck.checkpoint.path = file.path();
  ck.checkpoint.interval = 3;
  ck.max_iterations = 6;  // "interrupted" after 6 iterations
  const auto first = cgls(op, y, ck);
  EXPECT_EQ(first.resumed_from, 0);
  EXPECT_EQ(first.iterations, 6);

  ck.max_iterations = 12;
  const auto resumed = cgls(op, y, ck);
  EXPECT_EQ(resumed.resumed_from, 6);
  EXPECT_EQ(resumed.iterations, 12);
  EXPECT_EQ(resumed.x, straight.x);
  expect_same_history(resumed, straight);
}

TEST(Checkpoint, SirtResumeIsBitwiseIdentical) {
  const auto a = nonneg_system(60, 40, 5);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 6);
  CheckpointFile file("sirt");

  SirtOptions plain;
  plain.max_iterations = 12;
  const auto straight = sirt(op, y, plain);

  SirtOptions ck = plain;
  ck.checkpoint.path = file.path();
  ck.checkpoint.interval = 3;
  ck.max_iterations = 6;
  (void)sirt(op, y, ck);

  ck.max_iterations = 12;
  const auto resumed = sirt(op, y, ck);
  EXPECT_EQ(resumed.resumed_from, 6);
  EXPECT_EQ(resumed.x, straight.x);
  expect_same_history(resumed, straight);
}

TEST(Checkpoint, GdResumeIsBitwiseIdentical) {
  const auto a = well_conditioned(60, 40, 7);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 8);
  CheckpointFile file("gd");

  GdOptions plain;
  plain.max_iterations = 12;
  const auto straight = gradient_descent(op, y, plain);

  GdOptions ck = plain;
  ck.checkpoint.path = file.path();
  ck.checkpoint.interval = 3;
  ck.max_iterations = 6;
  (void)gradient_descent(op, y, ck);

  ck.max_iterations = 12;
  const auto resumed = gradient_descent(op, y, ck);
  EXPECT_EQ(resumed.resumed_from, 6);
  EXPECT_EQ(resumed.x, straight.x);
  expect_same_history(resumed, straight);
}

TEST(Checkpoint, CorruptCheckpointStartsCold) {
  const auto a = well_conditioned(60, 40, 9);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 10);
  CheckpointFile file("corrupt");

  // Garbage where a checkpoint should be: resume degrades to a cold start
  // instead of crashing or resuming from poison.
  std::FILE* f = std::fopen(file.path().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint at all", f);
  std::fclose(f);

  CglsOptions opt;
  opt.max_iterations = 8;
  opt.checkpoint.path = file.path();
  opt.checkpoint.interval = 4;
  const auto result = cgls(op, y, opt);
  EXPECT_EQ(result.resumed_from, 0);
  EXPECT_EQ(result.iterations, 8);

  const auto straight = cgls(op, y, {.max_iterations = 8});
  EXPECT_EQ(result.x, straight.x);
}

TEST(Checkpoint, WrongSolverCheckpointStartsCold) {
  const auto a = well_conditioned(60, 40, 11);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 12);
  CheckpointFile file("cross");

  CglsOptions copt;
  copt.max_iterations = 6;
  copt.checkpoint.path = file.path();
  copt.checkpoint.interval = 3;
  (void)cgls(op, y, copt);  // leaves a CGLS checkpoint behind

  SirtOptions sopt;
  sopt.max_iterations = 4;
  sopt.checkpoint.path = file.path();
  sopt.checkpoint.interval = 0;  // resume only, never overwrite
  const auto result = sirt(op, y, sopt);
  EXPECT_EQ(result.resumed_from, 0);  // tag mismatch rejected the file
  EXPECT_EQ(result.iterations, 4);
}

TEST(Checkpoint, CglsDivergenceRollsBackToSnapshot) {
  const auto a = well_conditioned(60, 40, 13);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 14);

  // CGLS calls apply() once per iteration; poisoning the 5th apply breaks
  // iteration 4 (0-based), after the in-memory snapshot at iteration 4.
  const PoisoningOperator poisoned(op, 5);
  CglsOptions opt;
  opt.max_iterations = 12;
  opt.checkpoint.interval = 2;  // in-memory snapshots, no file
  const auto result = cgls(poisoned, y, opt);
  EXPECT_TRUE(result.diverged);
  EXPECT_EQ(result.iterations, 4);  // rolled back to the snapshot
  for (const real v : result.x) EXPECT_TRUE(std::isfinite(v));
  EXPECT_FALSE(result.history.empty());
  EXPECT_LE(result.history.back().iteration, 4);

  // The rolled-back iterate is exactly the clean 4-iteration solution.
  const auto clean = cgls(op, y, {.max_iterations = 4});
  EXPECT_EQ(result.x, clean.x);
}

TEST(Checkpoint, DivergenceWithoutSnapshotStillStops) {
  const auto a = well_conditioned(60, 40, 15);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 16);
  const PoisoningOperator poisoned(op, 3);
  CglsOptions opt;
  opt.max_iterations = 12;  // interval 0: no snapshots at all
  const auto result = cgls(poisoned, y, opt);
  EXPECT_TRUE(result.diverged);
  EXPECT_LT(result.iterations, 12);
}

TEST(Checkpoint, SirtDivergenceRollsBack) {
  const auto a = nonneg_system(60, 40, 17);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 18);
  // SIRT calls apply() once in setup (row sums) plus once per iteration:
  // poisoning the 6th apply breaks iteration 5, after the snapshot at 4.
  const PoisoningOperator poisoned(op, 6);
  SirtOptions opt;
  opt.max_iterations = 12;
  opt.checkpoint.interval = 2;
  const auto result = sirt(poisoned, y, opt);
  EXPECT_TRUE(result.diverged);
  EXPECT_EQ(result.iterations, 4);
  for (const real v : result.x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Checkpoint, GdDivergenceRollsBack) {
  const auto a = well_conditioned(60, 40, 19);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 20);
  // GD calls apply() twice per iteration (forward + step size): poisoning
  // the 11th apply breaks iteration 5, after the snapshot at 4.
  const PoisoningOperator poisoned(op, 11);
  GdOptions opt;
  opt.max_iterations = 12;
  opt.checkpoint.interval = 2;
  const auto result = gradient_descent(poisoned, y, opt);
  EXPECT_TRUE(result.diverged);
  EXPECT_EQ(result.iterations, 4);
  for (const real v : result.x) EXPECT_TRUE(std::isfinite(v));
}

// Regression: resuming with an already-exhausted iteration budget
// (max_iterations <= checkpoint iteration, including 0) must skip the loop
// and hand back the checkpoint iterate unchanged — no empty-ring access in
// the replayed EarlyStop, no rollback, no div-by-zero in the timing stats.
TEST(Checkpoint, ResumeWithExhaustedBudgetReturnsSnapshotIterate) {
  const auto a = well_conditioned(60, 40, 21);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 22);
  CheckpointFile file("exhausted");

  CglsOptions ck;
  ck.checkpoint.path = file.path();
  ck.checkpoint.interval = 3;
  ck.max_iterations = 6;
  const auto first = cgls(op, y, ck);
  ASSERT_EQ(first.iterations, 6);

  ck.early_stop = true;  // exercise the replayed ring on resume too
  for (const int budget : {0, 4, 6}) {
    ck.max_iterations = budget;
    const auto resumed = cgls(op, y, ck);
    EXPECT_EQ(resumed.resumed_from, 6);
    EXPECT_EQ(resumed.iterations, 6);  // no extra work, no rollback
    EXPECT_FALSE(resumed.diverged);
    EXPECT_EQ(resumed.x, first.x) << "budget " << budget;
  }
}

// Same exhausted-budget contract without a checkpoint on disk: a cold start
// with max_iterations == 0 but checkpointing armed must not write, resume,
// or roll back anything.
TEST(Checkpoint, ZeroBudgetColdStartWritesNothing) {
  const auto a = well_conditioned(40, 30, 23);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(40, 24);
  CheckpointFile file("zerobudget");

  CglsOptions opt;
  opt.max_iterations = 0;
  opt.checkpoint.path = file.path();
  opt.checkpoint.interval = 2;
  const auto result = cgls(op, y, opt);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.resumed_from, 0);
  for (const real v : result.x) EXPECT_EQ(v, real{0});
  std::FILE* f = std::fopen(file.path().c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "zero-iteration run must not leave a checkpoint";
  if (f) std::fclose(f);
}

TEST(Checkpoint, EarlyStopTreatsNonFiniteAsImmediateStop) {
  EarlyStop fresh;
  EXPECT_TRUE(fresh.should_stop(std::numeric_limits<double>::quiet_NaN()));
  EarlyStop warm;
  EXPECT_FALSE(warm.should_stop(10.0));
  EXPECT_FALSE(warm.should_stop(5.0));
  EXPECT_TRUE(warm.should_stop(std::numeric_limits<double>::infinity()));
}

}  // namespace
}  // namespace memxct::solve
