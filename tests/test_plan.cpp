// Tests for the static nnz-balanced apply plans, persistent workspaces,
// fused solver kernels, and the zero-allocation / determinism contracts of
// the static-plan operator.
#include <gtest/gtest.h>

#include <omp.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <numeric>

#include "common/error.hpp"
#include "core/operator.hpp"
#include "solve/cgls.hpp"
#include "solve/vector_ops.hpp"
#include "sparse/plan.hpp"
#include "sparse/spmv.hpp"
#include "sparse/transpose.hpp"
#include "test_util.hpp"

// ---------------------------------------------------------------------------
// Global operator new/delete instrumentation: counts every heap allocation
// that goes through the default allocator, so the zero-allocation contract
// of the static-plan apply path can be asserted. AlignedAllocator traffic is
// counted separately via memxct::aligned_alloc_count().
namespace {
std::atomic<std::int64_t> g_new_count{0};
}  // namespace

// The replacement operator new below routes through malloc, so pairing its
// pointers with free() is correct; GCC's heuristic cannot see through a
// replaced allocator and flags every delete in this TU otherwise.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_new_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_new_count.fetch_add(1, std::memory_order_relaxed);
  const auto al = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(al, (size + al - 1) / al * al);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace memxct {
namespace {

/// ulp distance between two doubles (0 = bitwise equal).
std::int64_t ulp_diff(double a, double b) {
  if (a == b) return 0;
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  return std::abs(ia - ib);
}

/// Runs an omp-thread-count-sensitive body with a temporary setting.
template <class F>
auto with_threads(int nthreads, F&& fn) {
  const int before = omp_get_max_threads();
  omp_set_num_threads(nthreads);
  auto result = fn();
  omp_set_num_threads(before);
  return result;
}

// --- ApplyPlan construction ------------------------------------------------

TEST(ApplyPlan, CoversAllPartitionsExactlyOnce) {
  for (const int nparts : {1, 3, 7, 64, 1000}) {
    for (const int nslots : {1, 2, 5, 8, 64, 100}) {
      std::vector<nnz_t> weights(static_cast<std::size_t>(nparts));
      for (int p = 0; p < nparts; ++p)
        weights[static_cast<std::size_t>(p)] = 1 + (p * 37) % 91;
      const auto plan = sparse::ApplyPlan::build(weights, nslots);
      ASSERT_EQ(plan.num_slots(), nslots);
      ASSERT_EQ(plan.num_partitions(), nparts);
      // Slot ranges are contiguous, disjoint, and cover [0, nparts).
      EXPECT_EQ(plan.slot_begin(0), 0);
      EXPECT_EQ(plan.slot_end(nslots - 1), nparts);
      nnz_t total = 0;
      for (int s = 0; s < nslots; ++s) {
        EXPECT_LE(plan.slot_begin(s), plan.slot_end(s));
        if (s > 0) {
          EXPECT_EQ(plan.slot_begin(s), plan.slot_end(s - 1));
        }
        nnz_t slot_weight = 0;
        for (idx_t p = plan.slot_begin(s); p < plan.slot_end(s); ++p)
          slot_weight += weights[static_cast<std::size_t>(p)];
        EXPECT_EQ(slot_weight, plan.slot_nnz(s));
        total += slot_weight;
      }
      EXPECT_EQ(total, std::accumulate(weights.begin(), weights.end(),
                                       nnz_t{0}));
    }
  }
}

TEST(ApplyPlan, BalancesSkewedNnzWithinContiguousBound) {
  // Heavily skewed weights: partition p carries ~p² work plus a few spikes.
  std::vector<nnz_t> weights(512);
  nnz_t max_part = 0;
  for (std::size_t p = 0; p < weights.size(); ++p) {
    weights[p] = static_cast<nnz_t>(p * p % 977 + 1);
    if (p % 97 == 0) weights[p] += 5000;
    max_part = std::max(max_part, weights[p]);
  }
  for (const int nslots : {2, 4, 8, 16}) {
    const auto plan = sparse::ApplyPlan::build(weights, nslots);
    const auto stats = plan.stats();
    EXPECT_EQ(stats.num_slots, nslots);
    const nnz_t ideal = stats.total_nnz / nslots;
    // Cutting a contiguous prefix sum at ideal targets can overshoot each
    // boundary by at most one partition, so no slot exceeds the ideal share
    // by more than the largest single partition.
    EXPECT_LE(stats.max_slot_nnz, ideal + max_part);
    EXPECT_GE(stats.imbalance(), 1.0);
    EXPECT_LE(stats.imbalance(),
              1.0 + static_cast<double>(max_part * nslots) /
                        static_cast<double>(stats.total_nnz));
  }
}

TEST(ApplyPlan, HandlesEmptyAndDegenerateWeights) {
  // All-zero weights: still a valid full cover.
  const std::vector<nnz_t> zeros(8, 0);
  const auto plan = sparse::ApplyPlan::build(zeros, 4);
  EXPECT_EQ(plan.num_partitions(), 8);
  EXPECT_EQ(plan.slot_end(3), 8);
  EXPECT_EQ(plan.stats().total_nnz, 0);
  EXPECT_DOUBLE_EQ(plan.stats().imbalance(), 1.0);
  // More slots than partitions: trailing slots are empty but valid.
  const std::vector<nnz_t> two{5, 7};
  const auto wide = sparse::ApplyPlan::build(two, 8);
  nnz_t total = 0;
  for (int s = 0; s < 8; ++s) total += wide.slot_nnz(s);
  EXPECT_EQ(total, 12);
  EXPECT_THROW(sparse::ApplyPlan::build(two, 0), InvariantError);
}

// --- Planned kernels match their dynamic-schedule counterparts ------------

struct PlannedCase {
  idx_t rows, cols;
  double density;
  int nslots;
};

class PlannedKernels : public ::testing::TestWithParam<PlannedCase> {};

TEST_P(PlannedKernels, CsrPlannedBitwiseMatchesDynamic) {
  const auto& param = GetParam();
  const auto a =
      testutil::random_csr(param.rows, param.cols, param.density, 61);
  const auto x = testutil::random_vector(param.cols, 62);
  AlignedVector<real> expected(static_cast<std::size_t>(param.rows));
  AlignedVector<real> actual(static_cast<std::size_t>(param.rows), -1.0f);
  sparse::spmv_csr(a, x, expected);
  const auto plan = sparse::ApplyPlan::build(
      sparse::partition_nnz(a, sparse::kCsrPartsize), param.nslots);
  sparse::spmv_csr_planned(a, sparse::kCsrPartsize, plan, x, actual);
  EXPECT_EQ(0, std::memcmp(actual.data(), expected.data(),
                           actual.size() * sizeof(real)));
}

TEST_P(PlannedKernels, EllPlannedBitwiseMatchesDynamic) {
  const auto& param = GetParam();
  const auto a =
      testutil::random_csr(param.rows, param.cols, param.density, 63);
  const auto ell = sparse::to_ell_block(a, 16);
  const auto x = testutil::random_vector(param.cols, 64);
  AlignedVector<real> expected(static_cast<std::size_t>(param.rows));
  AlignedVector<real> actual(static_cast<std::size_t>(param.rows), -1.0f);
  sparse::spmv_ell(ell, x, expected);
  const auto plan =
      sparse::ApplyPlan::build(sparse::partition_nnz(ell), param.nslots);
  sparse::Workspace ws(param.nslots, 0, ell.block_rows);
  sparse::spmv_ell_planned(ell, plan, ws, x, actual);
  EXPECT_EQ(0, std::memcmp(actual.data(), expected.data(),
                           actual.size() * sizeof(real)));
}

TEST_P(PlannedKernels, BufferedPlannedBitwiseMatchesDynamic) {
  const auto& param = GetParam();
  const auto a =
      testutil::random_csr(param.rows, param.cols, param.density, 65);
  const sparse::BufferConfig config{16, 64};
  const auto bm = sparse::build_buffered(a, config);
  const auto x = testutil::random_vector(param.cols, 66);
  AlignedVector<real> expected(static_cast<std::size_t>(param.rows));
  AlignedVector<real> actual(static_cast<std::size_t>(param.rows), -1.0f);
  sparse::spmv_buffered(bm, x, expected);
  const auto plan =
      sparse::ApplyPlan::build(sparse::partition_nnz(bm), param.nslots);
  sparse::Workspace ws(param.nslots, config.buffsize, config.partsize);
  sparse::spmv_buffered_planned(bm, plan, ws, x, actual);
  EXPECT_EQ(0, std::memcmp(actual.data(), expected.data(),
                           actual.size() * sizeof(real)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlannedKernels,
    ::testing::Values(PlannedCase{1, 1, 1.0, 1}, PlannedCase{16, 16, 0.5, 2},
                      PlannedCase{100, 80, 0.1, 4},
                      PlannedCase{257, 129, 0.05, 8},
                      PlannedCase{512, 300, 0.02, 3},
                      PlannedCase{13, 30, 0.4, 16},  // more slots than parts
                      PlannedCase{40, 40, 0.0, 4}));

TEST(PlannedKernels, RejectsMismatchedPlan) {
  const auto a = testutil::random_csr(100, 80, 0.1, 67);
  const auto x = testutil::random_vector(80, 68);
  AlignedVector<real> y(100);
  // Plan built for a different partition granularity.
  const auto plan = sparse::ApplyPlan::build(sparse::partition_nnz(a, 8), 2);
  EXPECT_THROW(sparse::spmv_csr_planned(a, sparse::kCsrPartsize, plan, x, y),
               InvariantError);
}

TEST(PlannedKernels, BufferedPartitionWeightsMatchCsr) {
  // The buffered layout reorders entries stage-major but each partition's
  // nnz must equal the CSR rows it covers.
  const auto a = testutil::banded_csr(200, 180, 9, 69);
  const sparse::BufferConfig config{32, 64};
  const auto bm = sparse::build_buffered(a, config);
  const auto csr_weights = sparse::partition_nnz(a, config.partsize);
  const auto buf_weights = sparse::partition_nnz(bm);
  ASSERT_EQ(csr_weights.size(), buf_weights.size());
  for (std::size_t p = 0; p < csr_weights.size(); ++p)
    EXPECT_EQ(csr_weights[p], buf_weights[p]) << "partition " << p;
}

// --- Workspace -------------------------------------------------------------

TEST(Workspace, ProvidesRequestedCapacities) {
  sparse::Workspace ws(3, 64, 16);
  EXPECT_EQ(ws.num_slots(), 3);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(ws.input(s).size(), 64u);
    EXPECT_EQ(ws.output(s).size(), 16u);
    for (const real v : ws.input(s)) EXPECT_EQ(v, real{0});
  }
}

// --- Operator integration --------------------------------------------------

TEST(StaticPlanOperator, MatchesDynamicScheduleForAllKernels) {
  using core::KernelKind;
  using core::ScheduleKind;
  for (const auto kind : {KernelKind::Baseline, KernelKind::EllBlock,
                          KernelKind::Buffered, KernelKind::Library}) {
    const auto a = testutil::banded_csr(300, 280, 10, 71);
    const core::MemXCTOperator dynamic_op(a, kind, {16, 64}, 8,
                                          ScheduleKind::Dynamic);
    const core::MemXCTOperator planned_op(a, kind, {16, 64}, 8,
                                          ScheduleKind::StaticPlan);
    const auto x = testutil::random_vector(280, 72);
    const auto y = testutil::random_vector(300, 73);
    AlignedVector<real> fwd_dyn(300), fwd_plan(300), bwd_dyn(280),
        bwd_plan(280);
    dynamic_op.apply(x, fwd_dyn);
    planned_op.apply(x, fwd_plan);
    dynamic_op.apply_transpose(y, bwd_dyn);
    planned_op.apply_transpose(y, bwd_plan);
    EXPECT_EQ(0, std::memcmp(fwd_dyn.data(), fwd_plan.data(),
                             fwd_dyn.size() * sizeof(real)))
        << core::to_string(kind);
    EXPECT_EQ(0, std::memcmp(bwd_dyn.data(), bwd_plan.data(),
                             bwd_dyn.size() * sizeof(real)))
        << core::to_string(kind);
  }
}

TEST(StaticPlanOperator, ReportsPlanStats) {
  const auto a = testutil::banded_csr(400, 360, 12, 75);
  const auto op = with_threads(4, [&] {
    return core::MemXCTOperator(a, core::KernelKind::Buffered, {16, 64});
  });
  const auto fwd = op.forward_plan_stats();
  const auto bwd = op.transpose_plan_stats();
  EXPECT_EQ(fwd.num_slots, 4);
  EXPECT_EQ(fwd.total_nnz, a.nnz());
  EXPECT_EQ(bwd.total_nnz, a.nnz());
  EXPECT_GE(fwd.imbalance(), 1.0);
  // Banded matrices have near-uniform partitions; the static split must be
  // close to perfect.
  EXPECT_LT(fwd.imbalance(), 1.5);
}

TEST(StaticPlanOperator, ApplyIsAllocationFree) {
  using core::KernelKind;
  for (const auto kind : {KernelKind::Baseline, KernelKind::EllBlock,
                          KernelKind::Buffered, KernelKind::Library}) {
    const auto a = testutil::banded_csr(512, 480, 14, 77);
    const core::MemXCTOperator op(a, kind, {32, 128}, 16);
    const auto x = testutil::random_vector(480, 78);
    const auto y = testutil::random_vector(512, 79);
    AlignedVector<real> fwd(512), bwd(480);
    // Warm-up: OpenMP team startup may allocate on the first region.
    op.apply(x, fwd);
    op.apply_transpose(y, bwd);
    const std::int64_t new_before = g_new_count.load();
    const std::int64_t aligned_before = aligned_alloc_count().load();
    for (int rep = 0; rep < 5; ++rep) {
      op.apply(x, fwd);
      op.apply_transpose(y, bwd);
    }
    EXPECT_EQ(g_new_count.load() - new_before, 0)
        << "operator new called during apply: " << core::to_string(kind);
    EXPECT_EQ(aligned_alloc_count().load() - aligned_before, 0)
        << "AlignedAllocator used during apply: " << core::to_string(kind);
  }
}

// --- Determinism across thread counts --------------------------------------

TEST(Determinism, CglsBitwiseIdenticalAcrossThreadCounts) {
  const auto a = testutil::banded_csr(320, 260, 11, 81);
  AlignedVector<real> y(320);
  {
    const auto x_true = testutil::random_vector(260, 82);
    sparse::spmv_reference(a, x_true, y);
  }
  const auto solve_with = [&](int nthreads) {
    return with_threads(nthreads, [&] {
      const core::MemXCTOperator op(a, core::KernelKind::Buffered, {16, 64});
      solve::CglsOptions opt;
      opt.max_iterations = 25;
      return solve::cgls(op, y, opt);
    });
  };
  const auto r1 = solve_with(1);
  const auto r2 = solve_with(2);
  const auto r8 = solve_with(8);
  ASSERT_EQ(r1.x.size(), r2.x.size());
  ASSERT_EQ(r1.x.size(), r8.x.size());
  EXPECT_EQ(0, std::memcmp(r1.x.data(), r2.x.data(),
                           r1.x.size() * sizeof(real)));
  EXPECT_EQ(0, std::memcmp(r1.x.data(), r8.x.data(),
                           r1.x.size() * sizeof(real)));
  ASSERT_EQ(r1.history.size(), r8.history.size());
  for (std::size_t i = 0; i < r1.history.size(); ++i) {
    EXPECT_EQ(r1.history[i].residual_norm, r8.history[i].residual_norm);
    EXPECT_EQ(r1.history[i].solution_norm, r8.history[i].solution_norm);
  }
}

TEST(Determinism, DotIsThreadCountInvariant) {
  const auto a = testutil::random_vector(100000, 83);
  const auto b = testutil::random_vector(100000, 84);
  const double d1 = with_threads(1, [&] { return solve::dot(a, b); });
  const double d3 = with_threads(3, [&] { return solve::dot(a, b); });
  const double d8 = with_threads(8, [&] { return solve::dot(a, b); });
  EXPECT_EQ(d1, d3);
  EXPECT_EQ(d1, d8);
}

// --- Fused kernels match unfused references --------------------------------

TEST(FusedKernels, Axpy2MatchesTwoAxpys) {
  const auto p = testutil::random_vector(10000, 85);
  const auto q = testutil::random_vector(7000, 86);
  auto x = testutil::random_vector(10000, 87);
  auto r = testutil::random_vector(7000, 88);
  auto x_ref = x;
  auto r_ref = r;
  solve::axpy(0.75f, p, x_ref);
  solve::axpy(-0.25f, q, r_ref);
  solve::axpy2(0.75f, p, x, -0.25f, q, r);
  EXPECT_EQ(0, std::memcmp(x.data(), x_ref.data(), x.size() * sizeof(real)));
  EXPECT_EQ(0, std::memcmp(r.data(), r_ref.data(), r.size() * sizeof(real)));
}

TEST(FusedKernels, XpbyNormMatchesXpbyPlusNorm) {
  const auto s = testutil::random_vector(9000, 89);
  const auto r = testutil::random_vector(5000, 90);
  auto p = testutil::random_vector(9000, 91);
  auto p_ref = p;
  solve::xpby(s, 0.4f, p_ref);
  const double rnorm_ref = solve::norm2(r);
  const double rnorm = solve::xpby_norm(s, 0.4f, p, r);
  EXPECT_EQ(0, std::memcmp(p.data(), p_ref.data(), p.size() * sizeof(real)));
  EXPECT_LE(ulp_diff(rnorm, rnorm_ref), 1);
}

TEST(FusedKernels, AxpyDotMatchesAxpyPlusDot) {
  const auto x = testutil::random_vector(12000, 92);
  auto y = testutil::random_vector(12000, 93);
  auto y_ref = y;
  solve::axpy(-0.3f, x, y_ref);
  const double dot_ref = solve::dot(y_ref, y_ref);
  const double dot_fused = solve::axpy_dot(-0.3f, x, y);
  EXPECT_EQ(0, std::memcmp(y.data(), y_ref.data(), y.size() * sizeof(real)));
  EXPECT_LE(ulp_diff(dot_fused, dot_ref), 1);
}

TEST(FusedKernels, SubtractNormMatchesSubtractPlusNorm) {
  const auto a = testutil::random_vector(11000, 94);
  const auto b = testutil::random_vector(11000, 95);
  AlignedVector<real> y(11000), y_ref(11000);
  solve::subtract(a, b, y_ref);
  const double norm_ref = solve::norm2(y_ref);
  const double norm_fused = solve::subtract_norm(a, b, y);
  EXPECT_EQ(0, std::memcmp(y.data(), y_ref.data(), y.size() * sizeof(real)));
  EXPECT_LE(ulp_diff(norm_fused, norm_ref), 1);
}

TEST(FusedKernels, SirtKernelsMatchUnfusedReference) {
  const auto a = testutil::random_vector(8000, 96);
  const auto b = testutil::random_vector(8000, 97);
  auto w = testutil::random_vector(8000, 98);
  for (auto& v : w) v = std::abs(v) + 0.1f;  // positive diagonal weights
  AlignedVector<real> y(8000), y_ref(8000);
  solve::subtract(a, b, y_ref);
  const double norm_ref = solve::norm2(y_ref);
  for (std::size_t i = 0; i < y_ref.size(); ++i) y_ref[i] *= w[i];
  const double norm_fused = solve::sub_scale_norm(a, b, w, y);
  EXPECT_EQ(0, std::memcmp(y.data(), y_ref.data(), y.size() * sizeof(real)));
  EXPECT_LE(ulp_diff(norm_fused, norm_ref), 1);

  const auto g = testutil::random_vector(8000, 99);
  auto x = testutil::random_vector(8000, 100);
  auto x_ref = x;
  for (std::size_t i = 0; i < x_ref.size(); ++i)
    x_ref[i] += 0.9f * w[i] * g[i];
  const double xx_ref = solve::dot(x_ref, x_ref);
  const double xx = solve::diag_axpy_dot(0.9f, w, g, x);
  EXPECT_EQ(0, std::memcmp(x.data(), x_ref.data(), x.size() * sizeof(real)));
  EXPECT_LE(ulp_diff(xx, xx_ref), 1);
}

// --- EarlyStop ring buffer --------------------------------------------------

TEST(EarlyStopRing, LongRunBehavesLikeUnboundedHistory) {
  // Reference semantics: stop when the improvement over the last `window`
  // entries drops below tolerance. Feed a long geometric decay (never
  // triggers) followed by a plateau (triggers after `window` entries).
  solve::EarlyStop stop(1e-3, 3);
  double r = 1e6;
  for (int i = 0; i < 5000; ++i) {
    EXPECT_FALSE(stop.should_stop(r)) << "iteration " << i;
    r *= 0.998;  // 0.6% improvement over a 3-window, above tolerance
  }
  EXPECT_FALSE(stop.should_stop(r));
  EXPECT_FALSE(stop.should_stop(r));
  EXPECT_FALSE(stop.should_stop(r));
  EXPECT_TRUE(stop.should_stop(r));  // window_ entries with ~0 improvement
}

TEST(EarlyStopRing, ZeroResidualStopsImmediatelyAfterWindow) {
  solve::EarlyStop stop(1e-3, 2);
  EXPECT_FALSE(stop.should_stop(0.0));
  EXPECT_FALSE(stop.should_stop(0.0));
  EXPECT_TRUE(stop.should_stop(0.0));  // prev <= 0 → converged
}

}  // namespace
}  // namespace memxct
