// Tests for phantom generation, sinogram synthesis, and the dataset
// registry (Table 3 analogs).
#include <gtest/gtest.h>

#include "phantom/datasets.hpp"
#include "phantom/phantom.hpp"

namespace memxct::phantom {
namespace {

TEST(Phantom, SheppLoganBasicProperties) {
  const idx_t n = 64;
  const auto img = shepp_logan(n);
  ASSERT_EQ(img.size(), static_cast<std::size_t>(n) * n);
  // Head interior is positive, corners are empty.
  EXPECT_GT(img[static_cast<std::size_t>(n / 2) * n + n / 2], 0.0f);
  EXPECT_FLOAT_EQ(img[0], 0.0f);
  EXPECT_FLOAT_EQ(img[static_cast<std::size_t>(n) * n - 1], 0.0f);
}

TEST(Phantom, ShaleDeterministicAndNonNegative) {
  const auto a = shale_phantom(64, 7);
  const auto b = shale_phantom(64, 7);
  const auto c = shale_phantom(64, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const real v : a) EXPECT_GE(v, 0.0f);
}

TEST(Phantom, BrainHasVesselsAboveBackground) {
  const auto img = brain_phantom(128, 3);
  real max_v = 0;
  for (const real v : img) max_v = std::max(max_v, v);
  EXPECT_GE(max_v, 1.5f);  // vessel intensity stamped at 1.8
}

TEST(Phantom, ForwardProjectZeroImageIsZero) {
  const auto g = geometry::make_geometry(8, 16);
  std::vector<real> zero(
      static_cast<std::size_t>(g.tomogram_extent().size()), 0.0f);
  const auto sino = forward_project(g, zero);
  for (const real v : sino) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Phantom, ForwardProjectIsLinear) {
  const auto g = geometry::make_geometry(6, 12);
  const auto img = shepp_logan(g.image_size);
  std::vector<real> doubled(img);
  for (auto& v : doubled) v *= 2.0f;
  const auto s1 = forward_project(g, img);
  const auto s2 = forward_project(g, doubled);
  for (std::size_t i = 0; i < s1.size(); ++i)
    EXPECT_NEAR(s2[i], 2.0f * s1[i], 1e-4);
}

TEST(Phantom, UniformDiskProjectionPeaksAtCenter) {
  const auto g = geometry::make_geometry(4, 32);
  std::vector<real> img(
      static_cast<std::size_t>(g.tomogram_extent().size()), 1.0f);
  const auto sino = forward_project(g, img);
  // For a uniform square, central channels never integrate shorter paths
  // than edge channels; at oblique angles (45 deg = index 1) the corner
  // channels are strictly shorter.
  for (idx_t a = 0; a < g.num_angles; ++a) {
    const real center = sino[static_cast<std::size_t>(
        g.ray_index(a, g.num_channels / 2))];
    const real edge = sino[static_cast<std::size_t>(g.ray_index(a, 0))];
    EXPECT_GE(center, edge);
  }
  EXPECT_GT(
      sino[static_cast<std::size_t>(g.ray_index(1, g.num_channels / 2))],
      sino[static_cast<std::size_t>(g.ray_index(1, 0))]);
}

TEST(Noise, PoissonNoisePerturbsButPreservesScale) {
  const auto g = geometry::make_geometry(8, 32);
  const auto img = shepp_logan(g.image_size);
  auto clean = forward_project(g, img);
  auto noisy = clean;
  Rng rng(5);
  add_poisson_noise(noisy, 1e4, rng);
  EXPECT_NE(clean, noisy);
  EXPECT_NEAR(rmse(noisy, clean) / (rmse(clean, AlignedVector<real>(
                                              clean.size(), 0.0f)) + 1e-12),
              0.0, 0.2);
}

TEST(Noise, LowerDoseIsNoisier) {
  const auto g = geometry::make_geometry(8, 32);
  const auto img = shepp_logan(g.image_size);
  const auto clean = forward_project(g, img);
  auto low = clean, high = clean;
  Rng rng1(9), rng2(9);
  add_poisson_noise(low, 1e3, rng1);
  add_poisson_noise(high, 1e6, rng2);
  EXPECT_GT(rmse(low, clean), rmse(high, clean));
}

TEST(Datasets, RegistryMatchesTable3) {
  const auto& all = all_datasets();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(dataset("ADS1").paper_angles, 360);
  EXPECT_EQ(dataset("ADS1").paper_channels, 256);
  EXPECT_EQ(dataset("ADS4").paper_angles, 2400);
  EXPECT_EQ(dataset("RDS1").sample, SampleKind::Shale);
  EXPECT_EQ(dataset("RDS2").sample, SampleKind::Brain);
  EXPECT_EQ(dataset("RDS2").paper_channels, 11283);
  EXPECT_THROW((void)dataset("nope"), InvalidArgument);
}

TEST(Datasets, WorkingDimsKeepAspectRatio) {
  for (const auto& spec : all_datasets()) {
    const double paper_ratio = static_cast<double>(spec.paper_angles) /
                               spec.paper_channels;
    const double working_ratio =
        static_cast<double>(spec.angles) / spec.channels;
    EXPECT_NEAR(working_ratio, paper_ratio, 0.15 * paper_ratio)
        << spec.name;
    EXPECT_LT(spec.channels, spec.paper_channels);
  }
}

TEST(Datasets, AdsSeriesDoublesChannels) {
  EXPECT_EQ(dataset("ADS2").channels, 2 * dataset("ADS1").channels);
  EXPECT_EQ(dataset("ADS3").channels, 2 * dataset("ADS2").channels);
  EXPECT_EQ(dataset("ADS4").channels, 2 * dataset("ADS3").channels);
}

TEST(Datasets, ScaledByProducesSmallerVariant) {
  const auto small = dataset("ADS3").scaled_by(32);
  EXPECT_LT(small.channels, dataset("ADS3").channels);
  EXPECT_GE(small.channels, 16);
  EXPECT_GE(small.angles, 8);
}

TEST(Datasets, GenerateProducesConsistentShapes) {
  const auto spec = dataset("ADS1").scaled_by(16);
  const auto data = generate(spec, 42);
  EXPECT_EQ(static_cast<std::int64_t>(data.image.size()),
            data.geometry.tomogram_extent().size());
  EXPECT_EQ(static_cast<std::int64_t>(data.sinogram.size()),
            data.geometry.sinogram_extent().size());
  // Deterministic.
  const auto again = generate(spec, 42);
  EXPECT_EQ(data.sinogram, again.sinogram);
}

TEST(Datasets, GenerateWithNoiseDiffers) {
  const auto spec = dataset("RDS1").scaled_by(64);
  const auto clean = generate(spec, 42, 0.0);
  const auto noisy = generate(spec, 42, 1e4);
  EXPECT_NE(clean.sinogram, noisy.sinogram);
  EXPECT_EQ(clean.image, noisy.image);  // ground truth unaffected
}

}  // namespace
}  // namespace memxct::phantom
