// Tests for PGM image output and table/CSV rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/aligned.hpp"
#include "io/pgm.hpp"
#include "io/table.hpp"

namespace memxct::io {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Pgm, WritesCorrectHeaderAndSize) {
  const Extent2D ext{3, 4};
  const AlignedVector<real> data{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  const std::string path = "/tmp/memxct_test.pgm";
  write_pgm(path, ext, std::span<const real>(data.data(), data.size()), 0.0f,
            11.0f);
  const std::string content = read_file(path);
  EXPECT_EQ(content.substr(0, 2), "P5");
  EXPECT_NE(content.find("4 3"), std::string::npos);
  // Header + 12 pixel bytes.
  EXPECT_EQ(content.size(), std::string("P5\n4 3\n255\n").size() + 12);
  // Max value maps to 255, min to 0.
  EXPECT_EQ(static_cast<unsigned char>(content.back()), 255);
  std::remove(path.c_str());
}

TEST(Pgm, ClampsOutOfWindowValues) {
  const Extent2D ext{1, 3};
  const AlignedVector<real> data{-100.0f, 0.5f, 100.0f};
  const std::string path = "/tmp/memxct_clamp.pgm";
  write_pgm(path, ext, std::span<const real>(data.data(), data.size()), 0.0f,
            1.0f);
  const std::string content = read_file(path);
  const auto* pixels = reinterpret_cast<const unsigned char*>(
      content.data() + content.size() - 3);
  EXPECT_EQ(pixels[0], 0);
  EXPECT_EQ(pixels[1], 127);
  EXPECT_EQ(pixels[2], 255);
  std::remove(path.c_str());
}

TEST(Pgm, AutoscaleHandlesFlatImages) {
  const Extent2D ext{2, 2};
  const AlignedVector<real> data{5.0f, 5.0f, 5.0f, 5.0f};
  const std::string path = "/tmp/memxct_flat.pgm";
  EXPECT_NO_THROW(write_pgm_autoscale(
      path, ext, std::span<const real>(data.data(), data.size())));
  std::remove(path.c_str());
}

TEST(Pgm, RejectsSizeMismatch) {
  const Extent2D ext{2, 2};
  const AlignedVector<real> data{1.0f};
  EXPECT_THROW(write_pgm("/tmp/x.pgm", ext,
                         std::span<const real>(data.data(), data.size()), 0,
                         1),
               InvariantError);
}

TEST(Table, CsvRoundTrip) {
  TablePrinter t("Test Table");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"beta", "2"});
  const std::string path = "/tmp/memxct_table.csv";
  t.write_csv(path);
  EXPECT_EQ(read_file(path), "name,value\nalpha,1\nbeta,2\n");
  std::remove(path.c_str());
}

TEST(Table, Formatters) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::time_s(0.5), "500.00 ms");
  EXPECT_EQ(TablePrinter::time_s(2.0), "2.00 s");
  EXPECT_EQ(TablePrinter::bytes(1024.0), "1.00 KiB");
  EXPECT_EQ(TablePrinter::bytes(5.5 * 1024 * 1024 * 1024), "5.50 GiB");
}

TEST(Table, PrintDoesNotThrow) {
  TablePrinter t("Smoke");
  t.header({"a", "b", "c"});
  t.row({"1", "22", "333"});
  t.row({"only-one"});
  EXPECT_NO_THROW(t.print());
}

}  // namespace
}  // namespace memxct::io
