// Cross-module integration tests: full pipelines combining measurement
// preprocessing, reconstruction, distribution, serialization, and output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/volume.hpp"
#include "geometry/projector.hpp"
#include "io/pgm.hpp"
#include "io/serialize.hpp"
#include "phantom/analytic.hpp"
#include "phantom/datasets.hpp"
#include "phantom/phantom.hpp"
#include "pre/normalize.hpp"
#include "solve/fbp.hpp"
#include "sparse/spmv.hpp"
#include "test_util.hpp"

namespace memxct {
namespace {

TEST(Integration, RawCountsToImagePipeline) {
  // Beer's-law counts -> normalization -> COR correction -> CG -> image:
  // the whole beamline path must recover the phantom.
  const idx_t n = 48;
  const auto g = geometry::make_geometry(72, n);
  const auto truth = phantom::shale_phantom(n, 3);
  auto clean = phantom::forward_project(g, truth);
  const double shift = 1.5;
  const auto shifted = pre::shift_sinogram(g, clean, shift);

  // Raw counts with flat/dark fields.
  const double i0 = 1e5, dark_level = 20.0, mu = 0.15;
  AlignedVector<real> flat(static_cast<std::size_t>(n),
                           static_cast<real>(i0 + dark_level));
  AlignedVector<real> dark(static_cast<std::size_t>(n),
                           static_cast<real>(dark_level));
  AlignedVector<real> raw(shifted.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    raw[i] = static_cast<real>(
        dark_level + i0 * std::exp(-static_cast<double>(shifted[i]) * mu));

  auto sino = pre::normalize_transmission(g, raw, flat, dark);
  for (auto& v : sino) v = static_cast<real>(v / mu);  // undo mu scaling
  const double estimated = pre::estimate_center_offset(g, sino);
  EXPECT_NEAR(estimated, shift, 0.3);
  const auto centered = pre::shift_sinogram(g, sino, -estimated);

  core::Config config;
  config.iterations = 25;
  const core::Reconstructor recon(g, config);
  const auto result = recon.reconstruct(centered);
  const std::vector<real> zeros(truth.size(), 0.0f);
  EXPECT_LT(phantom::rmse(result.image, truth),
            0.35 * phantom::rmse(zeros, truth));
}

TEST(Integration, SerializedMatrixDrivesIdenticalSolve) {
  // Save the preprocessed matrix, reload it, and verify a solver built on
  // the reloaded matrix reproduces the original solve bit-for-bit.
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto g = spec.geometry();
  const hilbert::Ordering sino(g.sinogram_extent(),
                               hilbert::CurveKind::Hilbert);
  const hilbert::Ordering tomo(g.tomogram_extent(),
                               hilbert::CurveKind::Hilbert);
  const auto a = geometry::build_projection_matrix(g, sino, tomo);
  const std::string path = "/tmp/memxct_integration.csr";
  io::save_csr(path, a);
  const auto loaded = io::load_csr(path);
  std::remove(path.c_str());

  const auto x = testutil::random_vector(a.num_cols, 7);
  AlignedVector<real> y1(static_cast<std::size_t>(a.num_rows));
  AlignedVector<real> y2(static_cast<std::size_t>(a.num_rows));
  sparse::spmv_csr(a, x, y1);
  sparse::spmv_csr(loaded, x, y2);
  EXPECT_EQ(y1, y2);
}

TEST(Integration, DistributedVolumeReconstruction) {
  // Volume pipeline over the distributed operator: multiple slices, 4
  // simulated ranks, preprocessing shared.
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto g = spec.geometry();
  core::Config config;
  config.iterations = 6;
  config.num_ranks = 4;
  const core::VolumeReconstructor volume(g, config);
  const auto result = volume.reconstruct(2, [&](int s) {
    return phantom::forward_project(g,
                                    phantom::shale_phantom(g.image_size,
                                                           20 + s));
  });
  ASSERT_EQ(result.slices.size(), 2u);
  EXPECT_NE(result.slices[0], result.slices[1]);
  const auto* dist = volume.slice_reconstructor().dist_op();
  ASSERT_NE(dist, nullptr);
  EXPECT_GT(dist->kernel_times().applies, 0);
}

TEST(Integration, FbpAndCgAgreeOnEasyData) {
  // Densely sampled clean data: the two completely independent solution
  // paths (analytic filter+backproject vs memoized iterative SpMV) must
  // produce images that agree inside the reconstruction circle.
  const idx_t n = 64;
  const auto g = geometry::make_geometry(n * 2, n);
  const auto ellipses = phantom::shepp_logan_ellipses(n);
  const auto sino = phantom::analytic_sinogram(g, ellipses);
  const auto fbp = solve::fbp_reconstruct(g, sino);
  core::Config config;
  config.iterations = 40;
  const core::Reconstructor recon(g, config);
  const auto cg = recon.reconstruct(sino);
  double num = 0.0, den = 0.0;
  const double half = n / 2.0;
  for (idx_t r = 0; r < n; ++r)
    for (idx_t c = 0; c < n; ++c) {
      const double y = r + 0.5 - half, x = c + 0.5 - half;
      if (x * x + y * y > 0.6 * half * half) continue;
      const auto i = static_cast<std::size_t>(r) * n + c;
      const double d = static_cast<double>(fbp[i]) - cg.image[i];
      num += d * d;
      den += static_cast<double>(cg.image[i]) * cg.image[i] + 1e-9;
    }
  EXPECT_LT(std::sqrt(num / den), 0.25);
}

TEST(Integration, PgmOutputOfFullPipeline) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 5, 1e5);
  core::Config config;
  config.iterations = 10;
  const core::Reconstructor recon(data.geometry, config);
  const auto result = recon.reconstruct(data.sinogram);
  const std::string path = "/tmp/memxct_integration.pgm";
  io::write_pgm_autoscale(path, data.geometry.tomogram_extent(),
                          result.image);
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good());
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

TEST(Integration, TikhonovVolumeOnNoisySlices) {
  // Noisy multi-slice data with per-slice Tikhonov + z-coupling: the
  // combined regularization must beat the unregularized pipeline on RMSE.
  const auto spec = phantom::dataset("RDS1").scaled_by(32);
  const auto g = spec.geometry();
  std::vector<std::vector<real>> truths;
  std::vector<AlignedVector<real>> sinos;
  Rng rng(17);
  for (int s = 0; s < 3; ++s) {
    truths.push_back(phantom::shale_phantom(g.image_size, 100));  // static z
    auto sino = phantom::forward_project(g, truths.back());
    phantom::add_poisson_noise(sino, 2e3, rng);
    sinos.push_back(std::move(sino));
  }
  const auto source = [&](int s) { return sinos[static_cast<std::size_t>(s)]; };

  core::Config config;
  config.iterations = 20;
  const core::VolumeReconstructor volume(g, config);
  const auto plain = volume.reconstruct(3, source, {});
  const auto regularized =
      volume.reconstruct(3, source, {.warm_start = false, .z_lambda = 5.0});
  double err_plain = 0.0, err_reg = 0.0;
  for (int s = 0; s < 3; ++s) {
    err_plain += phantom::rmse(plain.slices[static_cast<std::size_t>(s)],
                               truths[static_cast<std::size_t>(s)]);
    err_reg += phantom::rmse(regularized.slices[static_cast<std::size_t>(s)],
                             truths[static_cast<std::size_t>(s)]);
  }
  // Slices 1-2 are pulled toward their (equally noisy but independent)
  // neighbours, averaging noise down.
  EXPECT_LT(err_reg, err_plain);
}

}  // namespace
}  // namespace memxct
