// Tests for the iterative solvers (CGLS, SIRT, GD) and vector kernels.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>
#include <memory>

#include "solve/cgls.hpp"
#include "solve/gd.hpp"
#include "solve/os.hpp"
#include "solve/sirt.hpp"
#include "solve/vector_ops.hpp"
#include "sparse/spmv.hpp"
#include "sparse/transpose.hpp"
#include "test_util.hpp"

namespace memxct::solve {
namespace {

/// Operator backed by an explicit CSR pair, for solver unit tests.
class CsrOperator final : public LinearOperator {
 public:
  explicit CsrOperator(sparse::CsrMatrix a)
      : a_(std::move(a)), at_(sparse::transpose(a_)) {}
  idx_t num_rows() const override { return a_.num_rows; }
  idx_t num_cols() const override { return a_.num_cols; }
  void apply(std::span<const real> x, std::span<real> y) const override {
    sparse::spmv_csr(a_, x, y);
  }
  void apply_transpose(std::span<const real> y,
                       std::span<real> x) const override {
    sparse::spmv_csr(at_, y, x);
  }

 private:
  sparse::CsrMatrix a_;
  sparse::CsrMatrix at_;
};

sparse::CsrMatrix well_conditioned(idx_t rows, idx_t cols,
                                   std::uint64_t seed) {
  // Random tall matrix plus a strong diagonal: the normal equations are
  // then well conditioned and CGLS converges fast.
  auto a = testutil::random_csr(rows, cols, 0.1, seed);
  sparse::CsrBuilder b(rows, cols);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < rows; ++r) {
    entries.clear();
    for (nnz_t k = a.displ[r]; k < a.displ[r + 1]; ++k)
      entries.emplace_back(a.ind[k], a.val[k] * 0.1f);
    if (r < cols) entries.emplace_back(r, 3.0f);
    b.set_row(r, entries);
  }
  return b.assemble();
}

TEST(VectorOps, DotAndNorm) {
  const AlignedVector<real> a{1, 2, 3}, b{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(norm2(a), std::sqrt(14.0));
}

TEST(VectorOps, AxpyXpbySubtractScale) {
  AlignedVector<real> y{1, 1, 1};
  const AlignedVector<real> x{1, 2, 3};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
  xpby(x, 0.5f, y);  // y = x + 0.5 y
  EXPECT_FLOAT_EQ(y[0], 1.0f + 1.5f);
  AlignedVector<real> d(3);
  subtract(x, y, d);
  EXPECT_FLOAT_EQ(d[0], x[0] - y[0]);
  scale(0.0f, d);
  EXPECT_FLOAT_EQ(d[1], 0.0f);
  set_zero(y);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
}

TEST(VectorOps, SizeMismatchThrows) {
  AlignedVector<real> a(3), b(4);
  EXPECT_THROW((void)dot(a, b), InvariantError);
  EXPECT_THROW(axpy(1.0f, a, b), InvariantError);
}

TEST(Cgls, SolvesConsistentSystemExactly) {
  // For consistent y = A x*, CGLS must recover x* (well-conditioned A).
  const auto a = well_conditioned(60, 40, 3);
  const CsrOperator op(a);
  const auto x_true = testutil::random_vector(40, 4);
  AlignedVector<real> y(60);
  sparse::spmv_reference(a, x_true, y);
  CglsOptions opt;
  opt.max_iterations = 60;
  const auto result = cgls(op, y, opt);
  EXPECT_LT(testutil::rel_error(result.x, x_true), 1e-3);
  EXPECT_LT(result.history.back().residual_norm, 1e-3 * norm2(y));
}

TEST(Cgls, ResidualIsMonotoneNonIncreasing) {
  const auto a = well_conditioned(80, 50, 5);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(80, 6);
  const auto result = cgls(op, y, {.max_iterations = 30});
  for (std::size_t i = 1; i < result.history.size(); ++i)
    EXPECT_LE(result.history[i].residual_norm,
              result.history[i - 1].residual_norm * (1.0 + 1e-6));
}

TEST(Cgls, SolutionNormGrowsAlongLCurve) {
  const auto a = well_conditioned(80, 50, 7);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(80, 8);
  const auto result = cgls(op, y, {.max_iterations = 20});
  EXPECT_GT(result.history.back().solution_norm,
            result.history.front().solution_norm * 0.99);
}

TEST(Cgls, EarlyStopTriggersNearConvergence) {
  const auto a = well_conditioned(60, 40, 9);
  const CsrOperator op(a);
  const auto x_true = testutil::random_vector(40, 10);
  AlignedVector<real> y(60);
  sparse::spmv_reference(a, x_true, y);
  CglsOptions opt;
  opt.max_iterations = 500;
  opt.early_stop = true;
  const auto result = cgls(op, y, opt);
  EXPECT_LT(result.iterations, 500);
}

TEST(Cgls, ZeroMeasurementGivesZeroSolution) {
  const auto a = well_conditioned(20, 10, 11);
  const CsrOperator op(a);
  AlignedVector<real> y(20, 0.0f);
  const auto result = cgls(op, y, {.max_iterations = 5});
  for (const real v : result.x) EXPECT_FLOAT_EQ(v, 0.0f);
  EXPECT_EQ(result.iterations, 0);  // gamma == 0 at start
}

// SIRT's R/C scaling assumes nonnegative weights (true for CT intersection
// lengths); its convergence tests use a nonnegative system.
sparse::CsrMatrix nonneg_system(idx_t rows, idx_t cols, std::uint64_t seed) {
  Rng rng(seed);
  sparse::CsrBuilder b(rows, cols);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < rows; ++r) {
    entries.clear();
    for (idx_t c = 0; c < cols; ++c)
      if (rng.uniform() < 0.15)
        entries.emplace_back(c, static_cast<real>(rng.uniform(0.1, 1.0)));
    if (r < cols) entries.emplace_back(r, 2.0f);
    b.set_row(r, entries);
  }
  return b.assemble();
}

TEST(Sirt, ReducesResidual) {
  const auto a = nonneg_system(60, 40, 13);
  const CsrOperator op(a);
  const auto x_true = testutil::random_vector(40, 14);
  AlignedVector<real> y(60);
  sparse::spmv_reference(a, x_true, y);
  const auto result = sirt(op, y, {.max_iterations = 50});
  EXPECT_LT(result.history.back().residual_norm,
            0.5 * result.history.front().residual_norm);
}

TEST(Sirt, NonNegativeScalingHandlesEmptyRows) {
  // A matrix with empty rows/columns must not produce NaNs (division
  // guarded by inv_or_zero).
  sparse::CsrBuilder b(4, 4);
  const std::vector<std::pair<idx_t, real>> row{{1, 1.0f}, {2, 2.0f}};
  b.set_row(0, row);
  b.set_row(2, row);
  const CsrOperator op(b.assemble());
  AlignedVector<real> y{1.0f, 0.0f, 2.0f, 0.0f};
  const auto result = sirt(op, y, {.max_iterations = 10});
  for (const real v : result.x) EXPECT_TRUE(std::isfinite(v));
}

TEST(Gd, ReducesResidual) {
  const auto a = well_conditioned(60, 40, 15);
  const CsrOperator op(a);
  const auto x_true = testutil::random_vector(40, 16);
  AlignedVector<real> y(60);
  sparse::spmv_reference(a, x_true, y);
  const auto result = gradient_descent(op, y, {.max_iterations = 40});
  EXPECT_LT(result.history.back().residual_norm,
            0.3 * result.history.front().residual_norm);
}

TEST(Convergence, CgBeatsSirtPerIteration) {
  // Fig 8's qualitative claim: CG reaches a given residual in far fewer
  // iterations than SIRT.
  const auto a = nonneg_system(100, 64, 17);
  const CsrOperator op(a);
  const auto x_true = testutil::random_vector(64, 18);
  AlignedVector<real> y(100);
  sparse::spmv_reference(a, x_true, y);
  const double target = 0.05 * norm2(y);

  const auto cg_result = cgls(op, y, {.max_iterations = 100});
  const auto sirt_result = sirt(op, y, {.max_iterations = 100});
  const auto iters_to_reach = [&](const SolveResult& r) {
    for (const auto& rec : r.history)
      if (rec.residual_norm < target) return rec.iteration;
    return 1000;
  };
  EXPECT_LT(iters_to_reach(cg_result), iters_to_reach(sirt_result));
}

// Regression: a zero-iteration budget must return the (zero) starting
// iterate cleanly — no div-by-zero in the per-iteration mean, no history,
// no surprise iterations — for every solver, even with early-stop and
// checkpointing armed.
TEST(ZeroIterationBudget, AllSolversReturnColdStartCleanly) {
  const auto a = well_conditioned(40, 30, 21);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(40, 22);

  CglsOptions cg;
  cg.max_iterations = 0;
  cg.early_stop = true;
  cg.checkpoint.interval = 2;
  const auto cg_result = cgls(op, y, cg);
  EXPECT_EQ(cg_result.iterations, 0);
  EXPECT_TRUE(cg_result.history.empty());
  EXPECT_EQ(cg_result.per_iteration_s, 0.0);
  EXPECT_FALSE(cg_result.diverged);
  for (const real v : cg_result.x) EXPECT_EQ(v, real{0});

  SirtOptions sirt_opt;
  sirt_opt.max_iterations = 0;
  sirt_opt.checkpoint.interval = 2;
  const auto sirt_result = sirt(op, y, sirt_opt);
  EXPECT_EQ(sirt_result.iterations, 0);
  EXPECT_EQ(sirt_result.per_iteration_s, 0.0);
  for (const real v : sirt_result.x) EXPECT_EQ(v, real{0});

  GdOptions gd_opt;
  gd_opt.max_iterations = 0;
  gd_opt.checkpoint.interval = 2;
  const auto gd_result = gradient_descent(op, y, gd_opt);
  EXPECT_EQ(gd_result.iterations, 0);
  EXPECT_EQ(gd_result.per_iteration_s, 0.0);
  for (const real v : gd_result.x) EXPECT_EQ(v, real{0});
}

// Regression: EarlyStop with a zero or negative window used to build an
// empty (or absurd, after the size_t cast) ring — the first feed would
// divide by the ring size. The constructor now clamps the window to >= 1.
TEST(EarlyStopHeuristic, DegenerateWindowsAreSafe) {
  for (const int window : {0, -1, -100}) {
    EarlyStop stop(1e-3, window);
    EXPECT_FALSE(stop.should_stop(10.0));  // must not crash
    EXPECT_FALSE(stop.should_stop(1.0));   // big improvement: keep going
    EXPECT_TRUE(stop.should_stop(0.9999)); // plateau within one step
  }
}

TEST(EarlyStopHeuristic, StopsOnPlateau) {
  EarlyStop stop(1e-3, 3);
  EXPECT_FALSE(stop.should_stop(100.0));
  EXPECT_FALSE(stop.should_stop(50.0));
  EXPECT_FALSE(stop.should_stop(25.0));
  EXPECT_FALSE(stop.should_stop(12.0));  // still improving fast
  EXPECT_FALSE(stop.should_stop(6.0));
  // Plateau: barely any improvement over the window.
  EXPECT_FALSE(stop.should_stop(5.999));
  EXPECT_FALSE(stop.should_stop(5.998));
  EXPECT_TRUE(stop.should_stop(5.997));
}

/// Row slice [first, first + count) of a CSR matrix as a LinearOperator —
/// the shape os_solve consumes, built without the core subset machinery so
/// the solver's sweep logic is tested in isolation.
sparse::CsrMatrix csr_row_slice(const sparse::CsrMatrix& a, idx_t first,
                                idx_t count) {
  sparse::CsrBuilder b(count, a.num_cols);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < count; ++r) {
    entries.clear();
    for (nnz_t k = a.displ[first + r]; k < a.displ[first + r + 1]; ++k)
      entries.emplace_back(a.ind[k], a.val[k]);
    b.set_row(r, entries);
  }
  return b.assemble();
}

// Regression: EarlyStop's window is calibrated in full-matrix passes.
// Feeding it the K per-subset residuals of an ordered-subsets sweep would
// fill the window K times faster and exit mid-convergence, so os_solve must
// evaluate the heuristic on full-sweep boundaries only. With more subsets
// than window slots, a spurious sub-iteration feed would terminate inside
// the very first sweep; a boundary-only feed cannot stop before `window`
// completed sweeps.
TEST(OsEarlyStop, EvaluatedOnSweepBoundariesOnly) {
  const idx_t rows = 96, cols = 40, rows_per_subset = 16;
  const auto a = well_conditioned(rows, cols, 21);
  std::vector<std::unique_ptr<CsrOperator>> slice_ops;
  std::vector<OsSubset> subsets;
  for (idx_t first = 0; first < rows; first += rows_per_subset) {
    slice_ops.push_back(
        std::make_unique<CsrOperator>(csr_row_slice(a, first,
                                                    rows_per_subset)));
    subsets.push_back({slice_ops.back().get(), first});
  }
  const auto x_true = testutil::random_vector(cols, 22);
  AlignedVector<real> y(rows);
  sparse::spmv_reference(a, x_true, y);

  OsOptions opt;
  opt.max_sweeps = 40;
  opt.early_stop = true;
  opt.early_stop_window = 3;  // < K = 6: a per-subset feed would fire early.
  const auto result = os_solve(subsets, y, opt);
  EXPECT_GE(result.iterations, opt.early_stop_window)
      << "stopped inside the window: the heuristic saw per-subset residuals";
  EXPECT_LT(result.iterations, opt.max_sweeps)
      << "the plateau must eventually stop the solve";
  // One history record per completed sweep, indexed by sweep number — the
  // sub-iterations leave no trace in the iteration accounting.
  ASSERT_EQ(result.history.size(),
            static_cast<std::size_t>(result.iterations));
  for (std::size_t i = 0; i < result.history.size(); ++i)
    EXPECT_EQ(result.history[i].iteration, static_cast<int>(i));
}

}  // namespace
}  // namespace memxct::solve
