// Tests for the sharded serving subsystem: partition-aligned row cuts,
// precomputed exchange plans, and the ShardedOperator's headline contract —
// bitwise parity with the serial P=1 path for any shard count, kernel
// family, SpMM width, group size, and pipeline depth.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "core/opkey.hpp"
#include "core/reconstructor.hpp"
#include "geometry/projector.hpp"
#include "phantom/phantom.hpp"
#include "serve/server.hpp"
#include "shard/partition.hpp"
#include "shard/plan.hpp"
#include "shard/sharded_operator.hpp"
#include "solve/cgls.hpp"
#include "sparse/spmv.hpp"
#include "sparse/transpose.hpp"
#include "test_util.hpp"

namespace memxct::shard {
namespace {

sparse::CsrMatrix make_matrix() {
  const auto g = geometry::make_geometry(20, 24);
  const hilbert::Ordering sino_ord(g.sinogram_extent(),
                                   hilbert::CurveKind::Hilbert, 4);
  const hilbert::Ordering tomo_ord(g.tomogram_extent(),
                                   hilbert::CurveKind::Hilbert, 4);
  return geometry::build_projection_matrix(g, sino_ord, tomo_ord);
}

bool bitwise_equal(std::span<const real> a, std::span<const real> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(real)) == 0;
}

// ---------------------------------------------------------------------------
// Partition-aligned row cuts.

TEST(PartitionAligned, CutsSnapToPartsizeAndCoverAllRows) {
  const auto a = make_matrix();
  const idx_t partsize = 32;
  for (const int shards : {1, 2, 3, 4, 7}) {
    const auto part = partition_rows_aligned(a, shards, partsize);
    EXPECT_EQ(part.num_ranks(), shards);
    EXPECT_EQ(part.begin(0), 0);
    EXPECT_EQ(part.end(shards - 1), a.num_rows);
    for (int p = 0; p + 1 < shards; ++p) {
      EXPECT_EQ(part.end(p) % partsize, 0)
          << "interior cut " << p << " not partition-aligned";
      EXPECT_LE(part.begin(p), part.end(p));
    }
  }
}

TEST(PartitionAligned, BalancesNnzAcrossShards) {
  const auto a = make_matrix();
  const auto part = partition_rows_aligned(a, 4, 32);
  // nnz-greedy alignment on a dense-ish projection matrix should stay well
  // under 2x imbalance.
  std::int64_t max_nnz = 0;
  for (int p = 0; p < 4; ++p)
    max_nnz = std::max<std::int64_t>(
        max_nnz, a.displ[static_cast<std::size_t>(part.end(p))] -
                     a.displ[static_cast<std::size_t>(part.begin(p))]);
  EXPECT_LT(static_cast<double>(max_nnz) * 4.0,
            2.0 * static_cast<double>(a.nnz()));
}

// ---------------------------------------------------------------------------
// Exchange-plan construction (synthetic footprints, no operator involved).

struct PlanFixture {
  dist::DomainPartition owner{4, {0, 10, 20, 30, 40}};
  std::vector<std::vector<idx_t>> footprint;
  std::vector<std::vector<int>> first_tile;

  PlanFixture() {
    // Shard 0 needs its own range plus a halo from shards 1 and 3; shard 1
    // is self-contained; shard 2 needs entries from everyone; shard 3 needs
    // shard 2's tail.
    footprint = {{0, 3, 9, 12, 15, 31},
                 {10, 11, 19},
                 {2, 8, 14, 21, 25, 33, 39},
                 {26, 29, 30, 35}};
    for (const auto& f : footprint)
      first_tile.emplace_back(f.size(), 0);
  }
};

// Every non-self footprint position receives exactly one scattered element;
// every self position is gathered locally exactly once. Nothing is delivered
// twice and nothing is missed.
void expect_exactly_once(const ExchangePlan& plan,
                         const std::vector<std::vector<idx_t>>& footprint) {
  for (int q = 0; q < plan.num_shards; ++q) {
    std::multiset<idx_t> covered(plan.self_pos[static_cast<std::size_t>(q)].begin(),
                                 plan.self_pos[static_cast<std::size_t>(q)].end());
    for (int t = 0; t < plan.tiles; ++t)
      for (int r = 0; r < plan.rounds_per_tile; ++r) {
        const Round& round = plan.round(t, r);
        if (round.to_staging) continue;  // staging hop, not a delivery
        for (const idx_t pos : round.scatter_pos[static_cast<std::size_t>(q)])
          covered.insert(pos);
      }
    ASSERT_EQ(covered.size(), footprint[static_cast<std::size_t>(q)].size())
        << "shard " << q;
    idx_t expect = 0;
    for (const idx_t pos : covered)
      EXPECT_EQ(pos, expect++) << "shard " << q << ": position delivered "
                                  "zero or multiple times";
  }
}

TEST(ExchangePlan, FlatPlanDeliversEachHaloEntryExactlyOnce) {
  const PlanFixture f;
  const auto plan =
      build_exchange_plan(f.owner, f.footprint, f.first_tile, 1, 1);
  EXPECT_EQ(plan.rounds_per_tile, 1);
  expect_exactly_once(plan, f.footprint);
}

TEST(ExchangePlan, TwoLevelPlanDeliversEachHaloEntryExactlyOnce) {
  const PlanFixture f;
  const auto plan =
      build_exchange_plan(f.owner, f.footprint, f.first_tile, 1, 2);
  EXPECT_EQ(plan.rounds_per_tile, 2);
  expect_exactly_once(plan, f.footprint);
}

TEST(ExchangePlan, TiledPlanDeliversEachHaloEntryExactlyOnceAcrossTiles) {
  PlanFixture f;
  // Spread first-need across three tiles round-robin.
  for (auto& ft : f.first_tile)
    for (std::size_t i = 0; i < ft.size(); ++i)
      ft[i] = static_cast<int>(i % 3);
  const auto plan =
      build_exchange_plan(f.owner, f.footprint, f.first_tile, 3, 1);
  EXPECT_EQ(plan.tiles, 3);
  expect_exactly_once(plan, f.footprint);
}

TEST(ExchangePlan, EmptyOverlapPairsGetZeroByteEntries) {
  // Block-diagonal needs: every shard's footprint lies inside its own range,
  // so every rank pair's plan entry must be zero bytes and the halo empty.
  const dist::DomainPartition owner(3, {0, 10, 20, 30});
  const std::vector<std::vector<idx_t>> footprint = {
      {0, 4, 9}, {10, 15}, {22, 29}};
  std::vector<std::vector<int>> first_tile;
  for (const auto& fp : footprint) first_tile.emplace_back(fp.size(), 0);
  const auto plan = build_exchange_plan(owner, footprint, first_tile, 1, 1);
  EXPECT_EQ(plan.halo_elements(), 0);
  const Round& round = plan.round(0, 0);
  for (int p = 0; p < 3; ++p) {
    EXPECT_TRUE(round.pack_index[static_cast<std::size_t>(p)].empty());
    for (int q = 0; q < 3; ++q)
      EXPECT_EQ(round.send_displ[static_cast<std::size_t>(p)]
                               [static_cast<std::size_t>(q + 1)],
                round.send_displ[static_cast<std::size_t>(p)]
                                [static_cast<std::size_t>(q)])
          << "pair (" << p << "," << q << ") should be a zero-byte entry";
  }
  // Self entries still resolve locally.
  for (int q = 0; q < 3; ++q)
    EXPECT_EQ(plan.self_index[static_cast<std::size_t>(q)].size(),
              footprint[static_cast<std::size_t>(q)].size());
}

TEST(ExchangePlan, RebuildsAreByteIdentical) {
  const PlanFixture f;
  for (const int group : {1, 2}) {
    const auto p1 =
        build_exchange_plan(f.owner, f.footprint, f.first_tile, 2, group);
    const auto p2 =
        build_exchange_plan(f.owner, f.footprint, f.first_tile, 2, group);
    EXPECT_EQ(p1.fingerprint(), p2.fingerprint());
    EXPECT_FALSE(p1.fingerprint().empty());
  }
}

TEST(ExchangePlan, OperatorPlansAreDeterministicAcrossRebuilds) {
  // Same matrix + same options (the opkey's shard fields) => byte-identical
  // plans: the property the registry's single-flight builds rely on.
  const auto a = make_matrix();
  const ShardedOperator::Options opt{.num_shards = 3};
  const ShardedOperator op1(a, opt);
  const ShardedOperator op2(a, opt);
  EXPECT_EQ(op1.forward_plan().fingerprint(),
            op2.forward_plan().fingerprint());
  EXPECT_EQ(op1.transpose_plan().fingerprint(),
            op2.transpose_plan().fingerprint());
}

// ---------------------------------------------------------------------------
// Operator-level bitwise parity with the serial kernels.

struct ShardCase {
  int shards;
  LocalKernel kernel;
};

class ShardSweep : public ::testing::TestWithParam<ShardCase> {};

ShardedOperator::Options case_options(const ShardCase& c) {
  ShardedOperator::Options opt;
  opt.num_shards = c.shards;
  opt.kernel = c.kernel;
  opt.buffer = {32, 256};  // small partitions so P=4 still has several
  return opt;
}

// Serial reference: the exact kernels the P=1 operator family runs.
void serial_reference(const sparse::CsrMatrix& a, const ShardCase& c,
                      std::span<const real> x, std::span<real> y) {
  if (c.kernel == LocalKernel::Buffered) {
    const auto buffered = sparse::build_buffered(a, {32, 256});
    sparse::spmv_buffered(buffered, x, y);
  } else {
    sparse::spmv_csr(a, x, y);
  }
}

TEST_P(ShardSweep, ForwardIsBitwiseEqualToSerial) {
  const auto a = make_matrix();
  const ShardedOperator op(a, case_options(GetParam()));
  const auto x = testutil::random_vector(a.num_cols, 71);
  AlignedVector<real> y_shard(static_cast<std::size_t>(a.num_rows));
  AlignedVector<real> y_serial(static_cast<std::size_t>(a.num_rows));
  op.apply(x, y_shard);
  serial_reference(a, GetParam(), x, y_serial);
  EXPECT_TRUE(bitwise_equal(y_shard, y_serial));
}

TEST_P(ShardSweep, TransposeIsBitwiseEqualToSerial) {
  const auto a = make_matrix();
  const auto at = sparse::transpose(a);
  const ShardedOperator op(a, case_options(GetParam()));
  const auto y = testutil::random_vector(a.num_rows, 72);
  AlignedVector<real> x_shard(static_cast<std::size_t>(a.num_cols));
  AlignedVector<real> x_serial(static_cast<std::size_t>(a.num_cols));
  op.apply_transpose(y, x_shard);
  serial_reference(at, GetParam(), y, x_serial);
  EXPECT_TRUE(bitwise_equal(x_shard, x_serial));
}

TEST_P(ShardSweep, BlockApplyLanesAreBitwiseEqualToSingleApplies) {
  const auto a = make_matrix();
  const ShardedOperator op(a, case_options(GetParam()));
  const idx_t k = 3;
  const auto n = a.num_cols;
  const auto m = a.num_rows;
  AlignedVector<real> x(static_cast<std::size_t>(n * k));
  for (idx_t s = 0; s < k; ++s) {
    const auto slice = testutil::random_vector(n, 80 + s);
    std::copy(slice.begin(), slice.end(),
              x.begin() + static_cast<std::ptrdiff_t>(s * n));
  }
  AlignedVector<real> y_block(static_cast<std::size_t>(m * k));
  op.apply_block(x, y_block, k);
  AlignedVector<real> y_single(static_cast<std::size_t>(m));
  for (idx_t s = 0; s < k; ++s) {
    op.apply(std::span<const real>(x).subspan(
                 static_cast<std::size_t>(s * n), static_cast<std::size_t>(n)),
             y_single);
    EXPECT_TRUE(bitwise_equal(
        std::span<const real>(y_block).subspan(
            static_cast<std::size_t>(s * m), static_cast<std::size_t>(m)),
        y_single))
        << "lane " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shards, ShardSweep,
    ::testing::Values(ShardCase{1, LocalKernel::BaselineCsr},
                      ShardCase{2, LocalKernel::BaselineCsr},
                      ShardCase{3, LocalKernel::BaselineCsr},
                      ShardCase{4, LocalKernel::BaselineCsr},
                      ShardCase{1, LocalKernel::Buffered},
                      ShardCase{2, LocalKernel::Buffered},
                      ShardCase{3, LocalKernel::Buffered},
                      ShardCase{4, LocalKernel::Buffered}));

TEST(ShardedOperator, TwoLevelExchangeKeepsBitwiseParity) {
  const auto a = make_matrix();
  ShardedOperator::Options flat;
  flat.num_shards = 4;
  ShardedOperator::Options grouped = flat;
  grouped.group_size = 2;
  const ShardedOperator op_flat(a, flat);
  const ShardedOperator op_grouped(a, grouped);
  EXPECT_EQ(op_grouped.forward_plan().rounds_per_tile, 2);
  const auto x = testutil::random_vector(a.num_cols, 81);
  AlignedVector<real> y1(static_cast<std::size_t>(a.num_rows));
  AlignedVector<real> y2(static_cast<std::size_t>(a.num_rows));
  op_flat.apply(x, y1);
  op_grouped.apply(x, y2);
  EXPECT_TRUE(bitwise_equal(y1, y2));
}

TEST(ShardedOperator, PipelineDepthDoesNotChangeBits) {
  const auto a = make_matrix();
  AlignedVector<real> reference;
  const auto x = testutil::random_vector(a.num_cols, 82);
  for (const int tiles : {1, 2, 4}) {
    ShardedOperator::Options opt;
    opt.num_shards = 3;
    opt.pipeline_tiles = tiles;
    const ShardedOperator op(a, opt);
    AlignedVector<real> y(static_cast<std::size_t>(a.num_rows));
    op.apply(x, y);
    if (reference.empty()) reference = y;
    EXPECT_TRUE(bitwise_equal(reference, y)) << "tiles=" << tiles;
  }
}

TEST(ShardedOperator, PerRankBytesShrinkWithShardCount) {
  const auto a = make_matrix();
  auto max_rank_bytes = [&](int shards) {
    ShardedOperator::Options opt;
    opt.num_shards = shards;
    const ShardedOperator op(a, opt);
    std::int64_t max_bytes = 0;
    for (int p = 0; p < shards; ++p)
      max_bytes = std::max(max_bytes, op.rank_bytes(p));
    return max_bytes;
  };
  const auto b1 = max_rank_bytes(1);
  const auto b2 = max_rank_bytes(2);
  const auto b4 = max_rank_bytes(4);
  EXPECT_LT(b2, b1);
  EXPECT_LT(b4, b2);
}

TEST(ShardedOperator, StatsAccumulateAndReset) {
  const auto a = make_matrix();
  ShardedOperator::Options opt;
  opt.num_shards = 2;
  const ShardedOperator op(a, opt);
  const auto x = testutil::random_vector(a.num_cols, 83);
  AlignedVector<real> y(static_cast<std::size_t>(a.num_rows));
  op.apply(x, y);
  op.apply(x, y);
  EXPECT_EQ(op.stats().applies, 2);
  EXPECT_GT(op.stats().compute_seconds, 0.0);
  EXPECT_GT(op.stats().comm_seconds, 0.0);
  EXPECT_GT(op.rank_comm_stats(0).bytes_sent, 0);
  op.reset_stats();
  EXPECT_EQ(op.stats().applies, 0);
  EXPECT_EQ(op.stats().comm_seconds, 0.0);
  EXPECT_EQ(op.rank_comm_stats(0).bytes_sent, 0);
}

TEST(ShardedOperator, CancelTokenDepipelinesButOutputStaysCorrect) {
  const auto a = make_matrix();
  ShardedOperator::Options opt;
  opt.num_shards = 2;
  opt.pipeline_tiles = 4;
  ShardedOperator op(a, opt);
  const auto x = testutil::random_vector(a.num_cols, 84);
  AlignedVector<real> y_plain(static_cast<std::size_t>(a.num_rows));
  op.apply(x, y_plain);

  solve::CancelToken token;
  token.request_cancel();  // fires at the first between-tile poll
  op.set_cancel_token(&token);
  AlignedVector<real> y_cancelled(static_cast<std::size_t>(a.num_rows));
  op.apply(x, y_cancelled);
  op.set_cancel_token(nullptr);

  // Correctness is unconditional; the pipeline just stops prefetching.
  EXPECT_TRUE(bitwise_equal(y_plain, y_cancelled));
  EXPECT_GT(op.stats().cancel_polls, 0);
  EXPECT_GT(op.stats().depipelined_tiles, 0);
}

TEST(ShardedOperator, ViewsShareStorageButNotCounters) {
  const auto a = make_matrix();
  ShardedOperator::Options opt;
  opt.num_shards = 2;
  const ShardedOperator op(a, opt);
  const auto view = op.make_view();
  const auto x = testutil::random_vector(a.num_cols, 85);
  AlignedVector<real> y1(static_cast<std::size_t>(a.num_rows));
  AlignedVector<real> y2(static_cast<std::size_t>(a.num_rows));
  op.apply(x, y1);
  view->apply(x, y2);
  EXPECT_TRUE(bitwise_equal(y1, y2));
  EXPECT_EQ(op.stats().applies, 1);
  EXPECT_EQ(view->stats().applies, 1);  // not 2: counters are per view
  EXPECT_EQ(op.bytes(), view->bytes());
}

// ---------------------------------------------------------------------------
// End-to-end parity through the Reconstructor.

struct EndToEnd {
  geometry::Geometry g = geometry::make_geometry(36, 24);
  AlignedVector<real> sino;
  EndToEnd() {
    const auto image = phantom::shepp_logan(24);
    sino = phantom::forward_project(g, image);
  }
};

TEST(ShardedReconstruction, CglsImagesAreBitwiseEqualToSerial) {
  const EndToEnd e;
  core::Config config;
  config.iterations = 6;
  const auto serial = core::Reconstructor(e.g, config).reconstruct(e.sino);
  for (const int shards : {2, 3}) {
    core::Config sharded = config;
    sharded.num_shards = shards;
    const core::Reconstructor recon(e.g, sharded);
    ASSERT_NE(recon.shard_op(), nullptr);
    EXPECT_EQ(recon.serial_op(), nullptr);
    const auto result = recon.reconstruct(e.sino);
    EXPECT_TRUE(bitwise_equal(result.image, serial.image))
        << shards << " shards";
  }
}

TEST(ShardedReconstruction, SirtImagesAreBitwiseEqualToSerial) {
  const EndToEnd e;
  core::Config config;
  config.solver = core::SolverKind::SIRT;
  config.iterations = 5;
  const auto serial = core::Reconstructor(e.g, config).reconstruct(e.sino);
  core::Config sharded = config;
  sharded.num_shards = 4;
  sharded.shard_group_size = 2;
  const auto result = core::Reconstructor(e.g, sharded).reconstruct(e.sino);
  EXPECT_TRUE(bitwise_equal(result.image, serial.image));
}

TEST(ShardedReconstruction, BaselineKernelParity) {
  const EndToEnd e;
  core::Config config;
  config.kernel = core::KernelKind::Baseline;
  config.iterations = 5;
  const auto serial = core::Reconstructor(e.g, config).reconstruct(e.sino);
  core::Config sharded = config;
  sharded.num_shards = 3;
  const auto result = core::Reconstructor(e.g, sharded).reconstruct(e.sino);
  EXPECT_TRUE(bitwise_equal(result.image, serial.image));
}

TEST(ShardedReconstruction, OpkeyDistinguishesShardCounts) {
  const EndToEnd e;
  core::Config c1, c2, c3;
  c2.num_shards = 2;
  c3.num_shards = 3;
  const auto k1 = core::operator_key(e.g, c1).text;
  const auto k2 = core::operator_key(e.g, c2).text;
  const auto k3 = core::operator_key(e.g, c3).text;
  EXPECT_NE(k1, k2);
  EXPECT_NE(k2, k3);
  // The unsharded key text is unchanged from the pre-sharding format — no
  // "-sh" suffix — so existing disk-cache stems stay valid.
  EXPECT_EQ(k1.find("-sh"), std::string::npos);
  EXPECT_NE(k2.find("-sh2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Typed unsupported-configuration rejections (Reconstructor + admission).

TEST(UnsupportedConfig, DistributedPlusReducedPrecisionIsTyped) {
  const EndToEnd e;
  core::Config config;
  config.num_ranks = 2;
  config.precision = sparse::ValueStorage::Bf16;
  try {
    const core::Reconstructor recon(e.g, config);
    FAIL() << "expected UnsupportedConfigError";
  } catch (const UnsupportedConfigError& err) {
    EXPECT_EQ(err.flag_a(), "--ranks");
    EXPECT_EQ(err.flag_b(), "--precision");
    EXPECT_NE(std::string(err.what()).find("unsupported configuration"),
              std::string::npos);
  }
}

TEST(UnsupportedConfig, ShardedPlusReducedPrecisionIsTyped) {
  const EndToEnd e;
  core::Config config;
  config.num_shards = 2;
  config.precision = sparse::ValueStorage::Fp16;
  try {
    const core::Reconstructor recon(e.g, config);
    FAIL() << "expected UnsupportedConfigError";
  } catch (const UnsupportedConfigError& err) {
    EXPECT_EQ(err.flag_a(), "--shards");
    EXPECT_EQ(err.flag_b(), "--precision");
  }
}

TEST(UnsupportedConfig, ShardedPlusDistributedIsTyped) {
  const EndToEnd e;
  core::Config config;
  config.num_shards = 2;
  config.num_ranks = 2;
  EXPECT_THROW(core::Reconstructor(e.g, config), UnsupportedConfigError);
}

TEST(UnsupportedConfig, StillCatchableAsInvalidArgument) {
  // Existing catch sites classify caller errors via InvalidArgument; the
  // typed subclass must not change that.
  const EndToEnd e;
  core::Config config;
  config.num_ranks = 2;
  config.precision = sparse::ValueStorage::Bf16;
  EXPECT_THROW(core::Reconstructor(e.g, config), InvalidArgument);
}

TEST(UnsupportedConfig, ServeAdmissionRejectsConflictsBeforeQueueing) {
  const EndToEnd e;
  serve::Server server({.workers = 1});
  core::Config config;
  config.iterations = 2;

  core::Config ranks_bf16 = config;
  ranks_bf16.num_ranks = 2;
  ranks_bf16.precision = sparse::ValueStorage::Bf16;
  try {
    (void)server.submit(e.g, ranks_bf16, e.sino);
    FAIL() << "expected UnsupportedConfigError";
  } catch (const UnsupportedConfigError& err) {
    EXPECT_EQ(err.flag_a(), "--ranks");
    EXPECT_EQ(err.flag_b(), "--precision");
  }

  core::Config shards_bf16 = config;
  shards_bf16.num_shards = 2;
  shards_bf16.precision = sparse::ValueStorage::Bf16;
  try {
    (void)server.submit(e.g, shards_bf16, e.sino);
    FAIL() << "expected UnsupportedConfigError";
  } catch (const UnsupportedConfigError& err) {
    EXPECT_EQ(err.flag_a(), "--shards");
    EXPECT_EQ(err.flag_b(), "--precision");
  }

  // Nothing entered the pipeline: no submissions, no rejections counted.
  const auto m = server.snapshot();
  EXPECT_EQ(m.submitted, 0);
  EXPECT_EQ(m.completed, 0);
}

// ---------------------------------------------------------------------------
// Serving sharded operators end to end.

TEST(ShardedServe, RequestsAreBitwiseEqualToUnshardedAndMetricsPopulate) {
  const EndToEnd e;
  serve::Server server({.workers = 2});
  core::Config config;
  config.iterations = 5;
  core::Config sharded = config;
  sharded.num_shards = 2;

  const auto id_plain = server.submit(e.g, config, e.sino);
  const auto id_shard1 = server.submit(e.g, sharded, e.sino);
  const auto id_shard2 = server.submit(e.g, sharded, e.sino);
  const auto r_plain = server.wait(id_plain);
  const auto r_shard1 = server.wait(id_shard1);
  const auto r_shard2 = server.wait(id_shard2);
  ASSERT_EQ(r_plain.status, serve::RequestStatus::Ok);
  ASSERT_EQ(r_shard1.status, serve::RequestStatus::Ok);
  ASSERT_EQ(r_shard2.status, serve::RequestStatus::Ok);
  EXPECT_TRUE(bitwise_equal(r_shard1.image, r_plain.image));
  EXPECT_TRUE(bitwise_equal(r_shard2.image, r_plain.image));
  // Same geometry, different num_shards: distinct registry keys, so the
  // second sharded request is the only possible registry hit.
  EXPECT_FALSE(r_shard1.registry_hit && r_plain.registry_hit);

  const auto m = server.snapshot();
  EXPECT_EQ(m.shard.sharded_requests, 2);
  EXPECT_EQ(m.shard.shards, 2);
  ASSERT_EQ(m.shard.rank_bytes_sent.size(), 2u);
  EXPECT_GT(m.shard.rank_bytes_sent[0], 0);
  EXPECT_GT(m.shard.rank_bytes_received[1], 0);
  EXPECT_GT(m.shard.compute_seconds, 0.0);
  // comm + overlap_saved reassemble the raw modeled exchange time.
  EXPECT_GE(m.shard.comm_seconds, 0.0);
  EXPECT_GT(m.shard.comm_seconds + m.shard.overlap_saved_seconds, 0.0);
}

TEST(ShardedServe, RegistryCachesShardedOperatorsWithByteAccounting) {
  const EndToEnd e;
  serve::OperatorRegistry registry;
  core::Config config;
  config.iterations = 2;
  config.num_shards = 2;
  auto lease1 = registry.acquire(e.g, config);
  EXPECT_FALSE(lease1.hit);
  auto lease2 = registry.acquire(e.g, config);
  EXPECT_TRUE(lease2.hit);
  EXPECT_EQ(lease1.recon.get(), lease2.recon.get());
  ASSERT_NE(lease1.recon->shard_op(), nullptr);
  const auto stats = registry.stats();
  EXPECT_EQ(stats.resident_operators, 1);
  EXPECT_EQ(stats.resident_bytes, lease1.recon->shard_op()->bytes());
}

// ---------------------------------------------------------------------------
// Satellite: per-solve kernel-time reset on the distributed operator.

TEST(DistKernelTimes, ResetClearsAccumulatedTimes) {
  const auto a = make_matrix();
  const dist::DomainPartition sino(2, {0, a.num_rows / 2, a.num_rows});
  const dist::DomainPartition tomo(2, {0, a.num_cols / 2, a.num_cols});
  const dist::DistOperator op(a, sino, tomo);
  const auto x = testutil::random_vector(a.num_cols, 90);
  AlignedVector<real> y(static_cast<std::size_t>(a.num_rows));
  op.apply(x, y);
  EXPECT_EQ(op.kernel_times().applies, 1);
  EXPECT_GT(op.kernel_times().ap_seconds, 0.0);
  op.reset_kernel_times();
  EXPECT_EQ(op.kernel_times().applies, 0);
  EXPECT_EQ(op.kernel_times().ap_seconds, 0.0);
  op.apply(x, y);
  EXPECT_EQ(op.kernel_times().applies, 1);
}

TEST(ShardedReconstruction, SolverRunsPlugAndPlay) {
  // The sharded operator is a LinearOperator like any other: CGLS over it
  // must equal CGLS over the serial kernels bit for bit.
  const auto a = make_matrix();
  ShardedOperator::Options opt;
  opt.num_shards = 3;
  opt.kernel = LocalKernel::BaselineCsr;
  const ShardedOperator op(a, opt);

  class SerialOp final : public solve::LinearOperator {
   public:
    explicit SerialOp(const sparse::CsrMatrix& m)
        : a_(m), at_(sparse::transpose(m)) {}
    idx_t num_rows() const override { return a_.num_rows; }
    idx_t num_cols() const override { return a_.num_cols; }
    void apply(std::span<const real> x, std::span<real> y) const override {
      sparse::spmv_csr(a_, x, y);
    }
    void apply_transpose(std::span<const real> y,
                         std::span<real> x) const override {
      sparse::spmv_csr(at_, y, x);
    }

   private:
    const sparse::CsrMatrix& a_;
    sparse::CsrMatrix at_;
  } serial(a);

  const auto y = testutil::random_vector(a.num_rows, 91);
  const auto r_shard = solve::cgls(op, y, {.max_iterations = 8});
  const auto r_serial = solve::cgls(serial, y, {.max_iterations = 8});
  EXPECT_TRUE(bitwise_equal(r_shard.x, r_serial.x));
}

}  // namespace
}  // namespace memxct::shard
