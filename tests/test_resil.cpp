// Tests for the resilience layer: CRC32C, the checked atomic file format,
// solver checkpoints, ingest validation/sanitization, fault injection, and
// the cache/ingest integration in core::Reconstructor.
//
// The fault-injection cases are the proof obligations of the failure model
// in DESIGN.md: every corruption class the pipeline claims to handle —
// flipped bytes, truncation, wrong-kind files, NaN/zinger samples, dead and
// hot channels — must be detected with a typed error or repaired.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "core/reconstructor.hpp"
#include "phantom/phantom.hpp"
#include "resil/checked_io.hpp"
#include "resil/checkpoint.hpp"
#include "resil/crc32c.hpp"
#include "resil/fault.hpp"
#include "resil/ingest.hpp"
#include "test_util.hpp"

namespace memxct::resil {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_("/tmp/memxct_test_" + name + "_" +
              std::to_string(::getpid())) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------- CRC32C --

TEST(Crc32c, KnownAnswer) {
  // The standard CRC32C check value (RFC 3720 appendix, iSCSI).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c("", 0), 0u); }

TEST(Crc32c, IncrementalMatchesOneShot) {
  const char data[] = "memxct checksummed cache payload";
  const std::size_t n = sizeof(data) - 1;
  for (std::size_t split = 0; split <= n; ++split) {
    const std::uint32_t part = crc32c_extend(0, data, split);
    EXPECT_EQ(crc32c_extend(part, data + split, n - split), crc32c(data, n));
  }
}

TEST(Crc32c, DetectsSingleBitFlip) {
  char data[] = "0123456789abcdef";
  const std::uint32_t good = crc32c(data, 16);
  for (int byte = 0; byte < 16; ++byte)
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(crc32c(data, 16), good);
      data[byte] ^= static_cast<char>(1 << bit);
    }
}

// --------------------------------------------------- checked file format --

TEST(CheckedIo, CsrRoundTripBitExact) {
  ScratchDir dir("csr_rt");
  const auto a = testutil::random_csr(57, 43, 0.15, 31);
  const auto path = dir.file("m.csr");
  save_csr_checked(path, a);
  const auto b = load_csr_checked(path);
  EXPECT_EQ(b.num_rows, a.num_rows);
  EXPECT_EQ(b.num_cols, a.num_cols);
  EXPECT_EQ(b.displ, a.displ);
  EXPECT_EQ(b.ind, a.ind);
  EXPECT_EQ(b.val, a.val);
}

TEST(CheckedIo, VectorRoundTripBitExact) {
  ScratchDir dir("vec_rt");
  const auto v = testutil::random_vector(1234, 32);
  const auto path = dir.file("v.vec");
  save_vector_checked(path, v);
  const auto w = load_vector_checked(path);
  EXPECT_EQ(w, v);
}

TEST(CheckedIo, CheckpointRoundTrip) {
  ScratchDir dir("ckpt_rt");
  SolverCheckpoint cp;
  cp.solver_kind = 7;
  cp.iteration = 3;
  cp.scalars = {1.5, -2.25};
  cp.vectors = {testutil::random_vector(5, 33), testutil::random_vector(3, 34)};
  cp.residual_log = {3.0, 2.0, 1.0};
  cp.xnorm_log = {0.5, 1.0, 1.5};
  const auto path = dir.file("s.ckpt");
  save_checkpoint(path, cp);
  const auto back = load_checkpoint(path);
  EXPECT_EQ(back.solver_kind, cp.solver_kind);
  EXPECT_EQ(back.iteration, cp.iteration);
  EXPECT_EQ(back.scalars, cp.scalars);
  ASSERT_EQ(back.vectors.size(), cp.vectors.size());
  EXPECT_EQ(back.vectors[0], cp.vectors[0]);
  EXPECT_EQ(back.vectors[1], cp.vectors[1]);
  EXPECT_EQ(back.residual_log, cp.residual_log);
  EXPECT_EQ(back.xnorm_log, cp.xnorm_log);
}

TEST(CheckedIo, AtomicWriteLeavesNoTempFiles) {
  ScratchDir dir("atomic");
  save_vector_checked(dir.file("v.vec"), testutil::random_vector(64, 35));
  int entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    EXPECT_EQ(e.path().string().find(".tmp."), std::string::npos)
        << "temp file left behind: " << e.path();
    ++entries;
  }
  EXPECT_EQ(entries, 1);
}

TEST(CheckedIo, MissingFileThrowsIoError) {
  EXPECT_THROW((void)load_csr_checked("/tmp/memxct_nope.csr"), IoError);
  EXPECT_THROW((void)load_checkpoint("/tmp/memxct_nope.ckpt"), IoError);
  EXPECT_FALSE(file_exists("/tmp/memxct_nope.csr"));
}

TEST(CheckedIo, RejectsWrongKind) {
  // A vector file loaded as a matrix (or checkpoint) must be rejected by
  // the kind tag, not misparsed.
  ScratchDir dir("kind");
  const auto path = dir.file("v.vec");
  save_vector_checked(path, testutil::random_vector(16, 36));
  EXPECT_THROW((void)load_csr_checked(path), IoError);
  EXPECT_THROW((void)load_checkpoint(path), IoError);
}

TEST(CheckedIo, EveryByteFlipIsDetected) {
  // Seeded fuzz: whatever single byte of the file is corrupted — magic,
  // header fields, either CRC, or payload — the load must fail with
  // IoError. The header CRC covers the header, the payload CRC the
  // payload, so there is no undetectable byte.
  ScratchDir dir("flip");
  FaultInjector inject(101);
  const auto a = testutil::random_csr(30, 30, 0.3, 37);
  const auto path = dir.file("m.csr");
  for (int trial = 0; trial < 60; ++trial) {
    save_csr_checked(path, a);
    const auto offset = inject.flip_random_byte(path);
    EXPECT_THROW((void)load_csr_checked(path), IoError)
        << "flip at offset " << offset << " not detected";
  }
  // And deterministically over every byte of a small vector file.
  const auto vpath = dir.file("v.vec");
  save_vector_checked(vpath, testutil::random_vector(4, 38));
  const auto size = static_cast<std::int64_t>(fs::file_size(vpath));
  for (std::int64_t off = 0; off < size; ++off) {
    save_vector_checked(vpath, testutil::random_vector(4, 38));
    inject.flip_byte_at(vpath, off);
    EXPECT_THROW((void)load_vector_checked(vpath), IoError)
        << "flip at offset " << off << " not detected";
  }
}

TEST(CheckedIo, TruncationIsDetected) {
  ScratchDir dir("trunc");
  FaultInjector inject(102);
  const auto a = testutil::random_csr(25, 25, 0.3, 39);
  const auto path = dir.file("m.csr");
  for (const double keep : {0.95, 0.5, 0.25, 0.05, 0.0}) {
    save_csr_checked(path, a);
    inject.truncate_file(path, keep);
    EXPECT_THROW((void)load_csr_checked(path), IoError)
        << "truncation to " << keep << " not detected";
  }
}

TEST(CheckedIo, CorruptCountCannotForceHugeAllocation) {
  // A payload whose array count claims ~8 PB must be rejected by the
  // bounds check before any allocation happens (the process would die on
  // resize otherwise, which is the legacy failure this format fixes).
  ScratchDir dir("bigcount");
  BlobWriter w;
  w.put_scalar<idx_t>(2);  // num_rows
  w.put_scalar<idx_t>(2);  // num_cols
  w.put_scalar<std::uint64_t>(std::uint64_t{1} << 50);  // displ count
  const auto path = dir.file("evil.csr");
  write_checked(path, BlobKind::CsrMatrix, w.payload());
  EXPECT_THROW((void)load_csr_checked(path), IoError);
}

TEST(CheckedIo, TrailingPayloadBytesRejected) {
  ScratchDir dir("trailing");
  BlobWriter w;
  const auto v = testutil::random_vector(8, 40);
  w.put_array<real>(v);
  w.put_scalar<std::uint32_t>(0xDEAD);  // extra bytes after the vector
  const auto path = dir.file("v.vec");
  write_checked(path, BlobKind::Vector, w.payload());
  EXPECT_THROW((void)load_vector_checked(path), IoError);
}

TEST(CheckedIo, CorruptCheckpointLogsRejected) {
  // iteration must equal the log lengths; a checkpoint violating that is
  // structurally corrupt even if the CRC passes (e.g. written by a buggy
  // producer).
  ScratchDir dir("cklog");
  SolverCheckpoint cp;
  cp.solver_kind = 1;
  cp.iteration = 5;            // but only 2 logged residuals
  cp.residual_log = {2.0, 1.0};
  cp.xnorm_log = {1.0, 2.0};
  const auto path = dir.file("s.ckpt");
  save_checkpoint(path, cp);
  EXPECT_THROW((void)load_checkpoint(path), IoError);
}

// ------------------------------------------------------------ ingest ------

/// Smooth positive sinogram (no anomalies).
AlignedVector<real> smooth_sinogram(idx_t angles, idx_t channels) {
  AlignedVector<real> s(static_cast<std::size_t>(angles) * channels);
  for (idx_t a = 0; a < angles; ++a)
    for (idx_t c = 0; c < channels; ++c)
      s[static_cast<std::size_t>(a) * channels + c] = static_cast<real>(
          1.0 + 0.2 * std::sin(0.13 * a) + 0.1 * std::cos(0.7 * c));
  return s;
}

TEST(Ingest, CleanSinogramValidates) {
  const idx_t A = 32, C = 48;
  const auto s = smooth_sinogram(A, C);
  const auto report = validate_sinogram(A, C, s);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.per_angle.size(), static_cast<std::size_t>(A));
  EXPECT_GT(report.per_angle[0].mean, 0.0);
}

TEST(Ingest, PhantomEdgeChannelsNotMisflaggedAsDead) {
  // A forward-projected phantom has all-zero channels at the detector
  // edges (rays through air). Those are dark *neighbourhoods*, not dead
  // detectors, and a clean phantom sinogram must validate clean.
  const auto g = geometry::make_geometry(48, 32);
  const auto image = phantom::shepp_logan(32);
  const auto sino = phantom::forward_project(g, image);
  const auto report =
      validate_sinogram(g.num_angles, g.num_channels, sino);
  EXPECT_TRUE(report.clean()) << report.summary();
}

TEST(Ingest, DetectsAndRepairsNonFinite) {
  const idx_t A = 32, C = 48;
  auto s = smooth_sinogram(A, C);
  FaultInjector inject(201);
  inject.inject_nan(s, 5);
  const auto found = validate_sinogram(A, C, s);
  EXPECT_EQ(found.nonfinite, 5);
  EXPECT_FALSE(found.clean());

  const auto repaired = sanitize_sinogram(A, C, s);
  EXPECT_EQ(repaired.nonfinite, 5);
  for (const real v : s) EXPECT_TRUE(std::isfinite(v));
  EXPECT_TRUE(validate_sinogram(A, C, s).clean());
}

TEST(Ingest, DetectsAndRepairsDeadChannel) {
  const idx_t A = 32, C = 48, dead = 17;
  auto s = smooth_sinogram(A, C);
  FaultInjector::kill_channel(s, A, C, dead);
  const auto found = validate_sinogram(A, C, s);
  ASSERT_EQ(found.dead_channels.size(), 1u);
  EXPECT_EQ(found.dead_channels[0], dead);

  const auto repaired = sanitize_sinogram(A, C, s);
  ASSERT_EQ(repaired.dead_channels.size(), 1u);
  // The repaired channel interpolates its neighbours, so it sits between
  // them in every angle.
  for (idx_t a = 0; a < A; ++a) {
    const real lo = std::min(s[static_cast<std::size_t>(a) * C + dead - 1],
                             s[static_cast<std::size_t>(a) * C + dead + 1]);
    const real hi = std::max(s[static_cast<std::size_t>(a) * C + dead - 1],
                             s[static_cast<std::size_t>(a) * C + dead + 1]);
    const real v = s[static_cast<std::size_t>(a) * C + dead];
    EXPECT_GE(v, lo - 1e-6f);
    EXPECT_LE(v, hi + 1e-6f);
  }
  EXPECT_TRUE(validate_sinogram(A, C, s).clean());
}

TEST(Ingest, DetectsAndRepairsHotChannel) {
  const idx_t A = 32, C = 48, hot = 30;
  auto s = smooth_sinogram(A, C);
  FaultInjector::saturate_channel(s, A, C, hot, 500.0f);
  const auto found = validate_sinogram(A, C, s);
  ASSERT_EQ(found.hot_channels.size(), 1u);
  EXPECT_EQ(found.hot_channels[0], hot);

  sanitize_sinogram(A, C, s);
  for (idx_t a = 0; a < A; ++a)
    EXPECT_LT(s[static_cast<std::size_t>(a) * C + hot], 2.0f);
  EXPECT_TRUE(validate_sinogram(A, C, s).clean());
}

TEST(Ingest, DetectsAndClipsZingers) {
  const idx_t A = 32, C = 64;
  auto s = smooth_sinogram(A, C);
  s[5 * C + 20] = 100.0f;  // cosmic-ray spike
  IngestOptions opt;
  opt.zinger_sigma = 5.0;
  const auto found = validate_sinogram(A, C, s, opt);
  EXPECT_GE(found.zingers, 1);
  EXPECT_GE(found.per_angle[5].zingers, 1);

  const auto repaired = sanitize_sinogram(A, C, s, opt);
  EXPECT_GE(repaired.zingers, 1);
  EXPECT_LT(s[5 * C + 20], 100.0f);  // clipped to the per-angle threshold
}

TEST(Ingest, SummaryMentionsEveryAnomalyClass) {
  IngestReport r;
  r.nonfinite = 2;
  r.zingers = 3;
  r.dead_channels = {1};
  r.hot_channels = {2, 4};
  const auto s = r.summary();
  EXPECT_NE(s.find("2 non-finite"), std::string::npos);
  EXPECT_NE(s.find("3 zingers"), std::string::npos);
  EXPECT_NE(s.find("1 dead"), std::string::npos);
  EXPECT_NE(s.find("2 hot"), std::string::npos);
}

// ----------------------------------------------------- fault injection ----

TEST(FaultInjection, SameSeedSameFaults) {
  ScratchDir dir("det");
  const auto v = testutil::random_vector(64, 50);
  const auto p1 = dir.file("a.vec"), p2 = dir.file("b.vec");
  save_vector_checked(p1, v);
  save_vector_checked(p2, v);
  FaultInjector i1(77), i2(77);
  EXPECT_EQ(i1.flip_random_byte(p1), i2.flip_random_byte(p2));

  auto d1 = v, d2 = v;
  i1.inject_nan(d1, 4);
  i2.inject_nan(d2, 4);
  for (std::size_t i = 0; i < d1.size(); ++i)
    EXPECT_EQ(std::isnan(d1[i]), std::isnan(d2[i]));

  auto s1 = v, s2 = v;
  i1.inject_spikes(s1, 3, 50.0f);
  i2.inject_spikes(s2, 3, 50.0f);
  EXPECT_EQ(s1, s2);
}

TEST(FaultInjection, FlipOnMissingFileThrows) {
  FaultInjector inject(1);
  EXPECT_THROW((void)inject.flip_random_byte("/tmp/memxct_no_such_file"),
               IoError);
}

// --------------------------------------------- Reconstructor integration --

AlignedVector<real> demo_sinogram(const geometry::Geometry& g) {
  return smooth_sinogram(g.num_angles, g.num_channels);
}

core::Config small_config() {
  core::Config c;
  c.iterations = 4;
  return c;
}

TEST(ReconstructorResil, CacheHitReproducesRebuildBitwise) {
  ScratchDir dir("cache");
  const auto g = geometry::make_geometry(24, 16);
  auto config = small_config();
  config.cache_dir = dir.path();
  const auto sino = demo_sinogram(g);

  const core::Reconstructor cold(g, config);
  EXPECT_FALSE(cold.preprocess_report().cache_hit);
  const auto cold_image = cold.reconstruct(sino).image;

  const core::Reconstructor warm(g, config);
  EXPECT_TRUE(warm.preprocess_report().cache_hit);
  EXPECT_EQ(warm.reconstruct(sino).image, cold_image);
}

TEST(ReconstructorResil, CacheDirectoryIsCreatedIfMissing) {
  ScratchDir dir("cache_mkdir");
  const auto g = geometry::make_geometry(24, 16);
  auto config = small_config();
  config.cache_dir = dir.path() + "/nested/cache";

  const core::Reconstructor cold(g, config);
  EXPECT_FALSE(cold.preprocess_report().cache_hit);
  const core::Reconstructor warm(g, config);
  EXPECT_TRUE(warm.preprocess_report().cache_hit);
}

TEST(ReconstructorResil, CorruptCacheIsRebuiltNotTrusted) {
  ScratchDir dir("cache_bad");
  const auto g = geometry::make_geometry(24, 16);
  auto config = small_config();
  config.cache_dir = dir.path();
  const auto sino = demo_sinogram(g);

  const core::Reconstructor cold(g, config);
  const auto cold_image = cold.reconstruct(sino).image;

  // Corrupt the single cache file the cold run wrote.
  FaultInjector inject(301);
  int files = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    inject.flip_random_byte(e.path().string());
    ++files;
  }
  ASSERT_EQ(files, 1);

  const core::Reconstructor rebuilt(g, config);
  EXPECT_FALSE(rebuilt.preprocess_report().cache_hit);
  EXPECT_EQ(rebuilt.reconstruct(sino).image, cold_image);
  // The rebuild also repopulated the cache with a good file.
  const core::Reconstructor warm(g, config);
  EXPECT_TRUE(warm.preprocess_report().cache_hit);
}

TEST(ReconstructorResil, RejectPolicyThrowsOnNaN) {
  const auto g = geometry::make_geometry(24, 16);
  auto config = small_config();
  config.ingest.policy = IngestPolicy::Reject;
  const core::Reconstructor recon(g, config);
  auto sino = demo_sinogram(g);
  EXPECT_FALSE(recon.reconstruct(sino).solve.x.empty());  // clean passes
  sino[7] = std::numeric_limits<real>::quiet_NaN();
  EXPECT_THROW((void)recon.reconstruct(sino), InvalidArgument);
}

TEST(ReconstructorResil, SanitizePolicyRepairsAndReports) {
  const auto g = geometry::make_geometry(24, 16);
  auto config = small_config();
  config.ingest.policy = IngestPolicy::Sanitize;
  const core::Reconstructor recon(g, config);
  auto sino = demo_sinogram(g);
  FaultInjector inject(302);
  inject.inject_nan(sino, 3);
  const auto result = recon.reconstruct(sino);
  EXPECT_EQ(result.ingest.nonfinite, 3);
  for (const real v : result.image) EXPECT_TRUE(std::isfinite(v));
  // The caller's buffer is not modified (sanitize works on a copy).
  int nans = 0;
  for (const real v : sino) nans += std::isnan(v) ? 1 : 0;
  EXPECT_EQ(nans, 3);
}

}  // namespace
}  // namespace memxct::resil
