// Tests for the set-associative LRU cache simulator and trace replay.
#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "cachesim/spmv_trace.hpp"
#include "hilbert/ordering.hpp"
#include "test_util.hpp"

namespace memxct::cachesim {
namespace {

TEST(Cache, ColdMissThenHit) {
  CacheModel cache({1024, 64, 2});
  EXPECT_FALSE(cache.access(0));   // compulsory miss
  EXPECT_TRUE(cache.access(0));    // hit
  EXPECT_TRUE(cache.access(63));   // same line
  EXPECT_FALSE(cache.access(64));  // next line
  EXPECT_EQ(cache.accesses(), 4);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 0.5);
}

TEST(Cache, LruEvictionOrder) {
  // 2-way, 2 sets (256 B total, 64 B lines): set = line index % 2.
  CacheModel cache({256, 64, 2});
  // Lines 0, 2, 4 all map to set 0. After 0,2 the set is full; 4 evicts 0.
  cache.access(0 * 64);
  cache.access(2 * 64);
  cache.access(4 * 64);
  EXPECT_TRUE(cache.access(2 * 64));   // still resident
  EXPECT_TRUE(cache.access(4 * 64));   // resident
  EXPECT_FALSE(cache.access(0 * 64));  // was evicted (LRU)
}

TEST(Cache, LruTouchRefreshesRecency) {
  CacheModel cache({256, 64, 2});
  cache.access(0 * 64);
  cache.access(2 * 64);
  cache.access(0 * 64);                // refresh line 0
  cache.access(4 * 64);                // evicts line 2, not 0
  EXPECT_TRUE(cache.access(0 * 64));
  EXPECT_FALSE(cache.access(2 * 64));
}

TEST(Cache, FullyAssociativeCapacity) {
  // 8 lines fully associative: 8 distinct lines fit, the 9th evicts.
  CacheModel cache({512, 64, 8});
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(cache.access(i * 64u));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(cache.access(i * 64u));
  cache.access(8 * 64u);
  EXPECT_FALSE(cache.access(0));  // LRU victim was line 0
}

TEST(Cache, ResetClearsState) {
  CacheModel cache({1024, 64, 2});
  cache.access(0);
  cache.reset();
  EXPECT_EQ(cache.accesses(), 0);
  EXPECT_FALSE(cache.access(0));  // cold again
}

TEST(Cache, RejectsDegenerateGeometry) {
  EXPECT_THROW((void)CacheConfig({32, 64, 2}).num_sets(), InvariantError);
}

TEST(Hierarchy, L2SeesOnlyL1Misses) {
  CacheHierarchy h({128, 64, 2}, {1024, 64, 4});
  h.access(0);
  h.access(0);  // L1 hit — must not reach L2
  EXPECT_EQ(h.l1().accesses(), 2);
  EXPECT_EQ(h.l2().accesses(), 1);
  EXPECT_EQ(h.l2().misses(), 1);
}

TEST(Footprint, DistinctLineCounting) {
  // Indices into a float array with 64 B lines (16 floats per line).
  const std::vector<idx_t> indices{0, 1, 2, 15, 16, 32, 33, 0};
  const auto stats = footprint_misses(indices, 64);
  EXPECT_EQ(stats.accesses, 8);
  EXPECT_EQ(stats.misses, 3);  // lines 0, 1, 2
}

TEST(Replay, RowMajorWorseThanHilbertOnBandedMatrix) {
  // Build a matrix whose gather footprint is compact in 2D: column = pixel
  // of a 64x64 image, rows touch a 2D disk around a moving center. Replay
  // the gather stream with columns numbered row-major vs Hilbert.
  const idx_t n = 64;
  const hilbert::Ordering hilbert_ord({n, n}, hilbert::CurveKind::Hilbert, 16);
  sparse::CsrBuilder brm(256, n * n);
  sparse::CsrBuilder bh(256, n * n);
  std::vector<std::pair<idx_t, real>> row_rm, row_h;
  for (idx_t r = 0; r < 256; ++r) {
    row_rm.clear();
    row_h.clear();
    const idx_t cr = (r * 7) % (n - 8);
    const idx_t cc = (r * 13) % (n - 8);
    for (idx_t dr = 0; dr < 8; ++dr)
      for (idx_t dc = 0; dc < 8; ++dc) {
        const idx_t rr = cr + dr, cc2 = cc + dc;
        row_rm.emplace_back(rr * n + cc2, 1.0f);
        row_h.emplace_back(hilbert_ord.ordered_index(rr, cc2), 1.0f);
      }
    brm.set_row(r, row_rm);
    bh.set_row(r, row_h);
  }
  const auto a_rm = brm.assemble();
  const auto a_h = bh.assemble();
  // Tiny cache so capacity misses matter.
  CacheHierarchy h1({512, 64, 2}, {4096, 64, 4});
  const auto rm_stats = replay_gather_stream(a_rm, h1);
  CacheHierarchy h2({512, 64, 2}, {4096, 64, 4});
  const auto h_stats = replay_gather_stream(a_h, h2);
  EXPECT_LT(h_stats.l2_miss_rate(), rm_stats.l2_miss_rate());
}

TEST(Replay, SamplingPreservesRateApproximately) {
  const auto a = testutil::banded_csr(2048, 2048, 32, 77);
  CacheHierarchy full({1 << 10, 64, 2}, {1 << 13, 64, 4});
  const auto full_stats = replay_gather_stream(a, full);
  CacheHierarchy sampled({1 << 10, 64, 2}, {1 << 13, 64, 4});
  const auto s = replay_gather_stream(a, sampled, 512);
  EXPECT_LT(s.irregular_accesses, full_stats.irregular_accesses);
  EXPECT_NEAR(s.l2_miss_rate(), full_stats.l2_miss_rate(), 0.15);
}

}  // namespace
}  // namespace memxct::cachesim
