// Tests for the public MemXCT API: operator kernel equivalence and the
// end-to-end Reconstructor pipeline.
#include <gtest/gtest.h>

#include "core/reconstructor.hpp"
#include "geometry/projector.hpp"
#include "phantom/datasets.hpp"
#include "phantom/phantom.hpp"
#include "test_util.hpp"

namespace memxct::core {
namespace {

class KernelKinds : public ::testing::TestWithParam<KernelKind> {};

TEST_P(KernelKinds, OperatorMatchesReferenceBothWays) {
  const auto g = geometry::make_geometry(16, 20);
  const hilbert::Ordering sino(g.sinogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  const hilbert::Ordering tomo(g.tomogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  auto a = geometry::build_projection_matrix(g, sino, tomo);
  const auto a_copy = a;  // the operator consumes a
  const MemXCTOperator op(std::move(a), GetParam(), {16, 64});

  const auto x = testutil::random_vector(op.num_cols(), 81);
  AlignedVector<real> y_op(static_cast<std::size_t>(op.num_rows()));
  AlignedVector<real> y_ref(static_cast<std::size_t>(op.num_rows()));
  op.apply(x, y_op);
  sparse::spmv_reference(a_copy, x, y_ref);
  EXPECT_LT(testutil::rel_error(y_op, y_ref), 1e-5);

  const auto y = testutil::random_vector(op.num_rows(), 82);
  AlignedVector<real> x_op(static_cast<std::size_t>(op.num_cols()));
  AlignedVector<real> x_ref(static_cast<std::size_t>(op.num_cols()), 0.0f);
  op.apply_transpose(y, x_op);
  // Reference transpose multiply: accumulate column-wise.
  for (idx_t r = 0; r < a_copy.num_rows; ++r)
    for (nnz_t k = a_copy.displ[r]; k < a_copy.displ[r + 1]; ++k)
      x_ref[static_cast<std::size_t>(a_copy.ind[k])] +=
          a_copy.val[k] * y[static_cast<std::size_t>(r)];
  EXPECT_LT(testutil::rel_error(x_op, x_ref), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelKinds,
                         ::testing::Values(KernelKind::Baseline,
                                           KernelKind::EllBlock,
                                           KernelKind::Buffered,
                                           KernelKind::Library));

TEST(Reconstructor, RecoversPhantomFromCleanData) {
  const auto spec = phantom::dataset("ADS1").scaled_by(8);  // 45x32
  const auto data = phantom::generate(spec, 7);
  Config config;
  config.iterations = 25;
  const Reconstructor recon(data.geometry, config);
  const auto result = recon.reconstruct(data.sinogram);

  const std::vector<real> zeros(data.image.size(), 0.0f);
  const double err = phantom::rmse(result.image, data.image);
  const double baseline = phantom::rmse(zeros, data.image);
  EXPECT_LT(err, 0.3 * baseline);
  EXPECT_EQ(result.solve.iterations, 25);
  EXPECT_FALSE(result.solve.history.empty());
}

TEST(Reconstructor, AllKernelsAndOrderingsAgree) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 8);
  std::vector<real> reference;
  for (const auto ordering :
       {hilbert::CurveKind::RowMajor, hilbert::CurveKind::Hilbert,
        hilbert::CurveKind::Morton}) {
    for (const auto kernel : {KernelKind::Baseline, KernelKind::Buffered,
                              KernelKind::EllBlock}) {
      Config config;
      config.ordering = ordering;
      config.kernel = kernel;
      config.iterations = 10;
      const Reconstructor recon(data.geometry, config);
      const auto result = recon.reconstruct(data.sinogram);
      if (reference.empty()) {
        reference = result.image;
      } else {
        // Different summation orders: small float drift allowed.
        EXPECT_LT(testutil::rel_error(result.image, reference), 5e-3)
            << to_string(ordering) << " / " << to_string(kernel);
      }
    }
  }
}

TEST(Reconstructor, DistributedPathMatchesSerial) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 9);
  Config serial_config;
  serial_config.iterations = 8;
  serial_config.kernel = KernelKind::Baseline;
  Config dist_config = serial_config;
  dist_config.num_ranks = 5;

  const Reconstructor serial(data.geometry, serial_config);
  const Reconstructor dist(data.geometry, dist_config);
  ASSERT_NE(dist.dist_op(), nullptr);
  EXPECT_EQ(serial.dist_op(), nullptr);

  const auto r_serial = serial.reconstruct(data.sinogram);
  const auto r_dist = dist.reconstruct(data.sinogram);
  // Reduction-order float drift through CG iterations; see test_dist.
  EXPECT_LT(testutil::rel_error(r_dist.image, r_serial.image), 2e-2);
  EXPECT_GT(dist.dist_op()->kernel_times().applies, 0);
}

TEST(Reconstructor, SolverChoicesRun) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 10);
  for (const auto solver :
       {SolverKind::CGLS, SolverKind::SIRT, SolverKind::GradientDescent}) {
    Config config;
    config.solver = solver;
    config.iterations = 5;
    const Reconstructor recon(data.geometry, config);
    const auto result = recon.reconstruct(data.sinogram);
    EXPECT_EQ(result.solve.iterations, 5) << to_string(solver);
    // Some reconstruction happened.
    double sum = 0.0;
    for (const real v : result.image) sum += std::abs(v);
    EXPECT_GT(sum, 0.0);
  }
}

TEST(Reconstructor, PreprocessReportIsPopulated) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 11);
  const Reconstructor recon(data.geometry, Config{});
  const auto& report = recon.preprocess_report();
  EXPECT_GT(report.nnz, 0);
  EXPECT_GT(report.regular_bytes, 0);
  EXPECT_GT(report.irregular_bytes, 0);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GE(report.total_seconds, report.trace_seconds);
}

TEST(Reconstructor, EarlyStopShortensSolve) {
  // Noisy data makes the residual plateau at the noise floor — the
  // overfitting knee the heuristic is designed to detect (Section 3.5.2).
  const auto spec = phantom::dataset("ADS1").scaled_by(8);
  const auto data = phantom::generate(spec, 12, /*incident_photons=*/1e3);
  Config config;
  config.iterations = 300;
  config.early_stop = true;
  const Reconstructor recon(data.geometry, config);
  const auto result = recon.reconstruct(data.sinogram);
  EXPECT_LT(result.solve.iterations, 300);
}

TEST(Reconstructor, PreprocessingReusedAcrossSlices) {
  // Table 5's amortization: one Reconstructor reconstructs many slices.
  // Shale phantoms are seed-dependent, so distinct seeds are distinct
  // slices (Shepp-Logan is deterministic and would alias).
  const auto spec = phantom::dataset("RDS1").scaled_by(32);
  const auto a = phantom::generate(spec, 13);
  const auto b = phantom::generate(spec, 14);
  Config config;
  config.iterations = 5;
  const Reconstructor recon(a.geometry, config);
  const auto ra = recon.reconstruct(a.sinogram);
  const auto rb = recon.reconstruct(b.sinogram);
  EXPECT_NE(ra.image, rb.image);  // different slices, same preprocessing
}

TEST(Reconstructor, RejectsWrongSinogramSize) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const auto data = phantom::generate(spec, 15);
  const Reconstructor recon(data.geometry, []{ Config c; c.iterations = 2; return c; }());
  const AlignedVector<real> wrong(13);
  EXPECT_THROW(recon.reconstruct(wrong), InvariantError);
}

}  // namespace
}  // namespace memxct::core
