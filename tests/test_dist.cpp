// Tests for the distributed A = R·C·A_p operator against the serial matrix.
#include <gtest/gtest.h>

#include "dist/dist_compxct.hpp"
#include "dist/dist_operator.hpp"
#include "geometry/projector.hpp"
#include "solve/cgls.hpp"
#include "solve/sirt.hpp"
#include "sparse/spmv.hpp"
#include "sparse/transpose.hpp"
#include "test_util.hpp"

namespace memxct::dist {
namespace {

struct DistSetup {
  sparse::CsrMatrix a;
  DomainPartition sino;
  DomainPartition tomo;
};

DistSetup make_setup(int ranks) {
  const auto g = geometry::make_geometry(20, 24);
  const hilbert::Ordering sino_ord(g.sinogram_extent(),
                                   hilbert::CurveKind::Hilbert, 4);
  const hilbert::Ordering tomo_ord(g.tomogram_extent(),
                                   hilbert::CurveKind::Hilbert, 4);
  auto a = geometry::build_projection_matrix(g, sino_ord, tomo_ord);
  auto sino = partition_by_tiles(sino_ord, ranks);
  auto tomo = partition_by_tiles(tomo_ord, ranks);
  return {std::move(a), std::move(sino), std::move(tomo)};
}

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, ForwardMatchesSerial) {
  const auto setup = make_setup(GetParam());
  const DistOperator op(setup.a, setup.sino, setup.tomo);
  const auto x = testutil::random_vector(setup.a.num_cols, 71);
  AlignedVector<real> y_dist(static_cast<std::size_t>(setup.a.num_rows));
  AlignedVector<real> y_serial(static_cast<std::size_t>(setup.a.num_rows));
  op.apply(x, y_dist);
  sparse::spmv_reference(setup.a, x, y_serial);
  EXPECT_LT(testutil::rel_error(y_dist, y_serial), 1e-5);
}

TEST_P(RankSweep, TransposeMatchesSerial) {
  const auto setup = make_setup(GetParam());
  const DistOperator op(setup.a, setup.sino, setup.tomo);
  const auto at = sparse::transpose(setup.a);
  const auto y = testutil::random_vector(setup.a.num_rows, 72);
  AlignedVector<real> x_dist(static_cast<std::size_t>(setup.a.num_cols));
  AlignedVector<real> x_serial(static_cast<std::size_t>(setup.a.num_cols));
  op.apply_transpose(y, x_dist);
  sparse::spmv_reference(at, y, x_serial);
  EXPECT_LT(testutil::rel_error(x_dist, x_serial), 1e-5);
}

TEST_P(RankSweep, KernelTimesAreRecorded) {
  const auto setup = make_setup(GetParam());
  const DistOperator op(setup.a, setup.sino, setup.tomo);
  const auto x = testutil::random_vector(setup.a.num_cols, 73);
  AlignedVector<real> y(static_cast<std::size_t>(setup.a.num_rows));
  op.apply(x, y);
  op.apply(x, y);
  const auto& times = op.kernel_times();
  EXPECT_EQ(times.applies, 2);
  EXPECT_GT(times.ap_seconds, 0.0);
  EXPECT_GE(times.ap_sum_seconds, times.ap_seconds);
  EXPECT_GE(times.reduce_seconds, 0.0);
  if (GetParam() > 1) {
    EXPECT_GT(times.comm_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(1, 2, 3, 4, 7, 16));

TEST(DistOperator, BufferedLocalKernelMatchesBaseline) {
  // The paper's full per-node configuration: Listing 3 kernels on each
  // rank's local blocks must agree with the baseline CSR path.
  const auto setup = make_setup(5);
  const DistOperator base(setup.a, setup.sino, setup.tomo);
  const DistOperator buffered(setup.a, setup.sino, setup.tomo,
                              perf::machine("Theta"), LocalKernel::Buffered,
                              {32, 256});
  const auto x = testutil::random_vector(setup.a.num_cols, 91);
  const auto y = testutil::random_vector(setup.a.num_rows, 92);
  AlignedVector<real> y1(static_cast<std::size_t>(setup.a.num_rows));
  AlignedVector<real> y2(static_cast<std::size_t>(setup.a.num_rows));
  base.apply(x, y1);
  buffered.apply(x, y2);
  EXPECT_LT(testutil::rel_error(y2, y1), 1e-5);
  AlignedVector<real> x1(static_cast<std::size_t>(setup.a.num_cols));
  AlignedVector<real> x2(static_cast<std::size_t>(setup.a.num_cols));
  base.apply_transpose(y, x1);
  buffered.apply_transpose(y, x2);
  EXPECT_LT(testutil::rel_error(x2, x1), 1e-5);
}

TEST(DistOperator, PartialRowsGrowWithRanks) {
  // Table 1: nnz(C) = total partial rows grows ~ sqrt(P); must be
  // monotone in P and exceed the serial row count for P > 1.
  const auto s1 = make_setup(1);
  const auto s4 = make_setup(4);
  const auto s16 = make_setup(16);
  const DistOperator op1(s1.a, s1.sino, s1.tomo);
  const DistOperator op4(s4.a, s4.sino, s4.tomo);
  const DistOperator op16(s16.a, s16.sino, s16.tomo);
  EXPECT_LE(op1.total_partial_rows(),
            static_cast<std::int64_t>(s1.a.num_rows));
  EXPECT_GT(op4.total_partial_rows(), op1.total_partial_rows());
  EXPECT_GT(op16.total_partial_rows(), op4.total_partial_rows());
}

TEST(DistOperator, PerRankMemoryShrinksWithRanks) {
  // The memory-scaling headline: per-rank footprint decreases with P.
  const auto s1 = make_setup(1);
  const auto s8 = make_setup(8);
  const DistOperator op1(s1.a, s1.sino, s1.tomo);
  const DistOperator op8(s8.a, s8.sino, s8.tomo);
  std::int64_t max8 = 0;
  for (int r = 0; r < 8; ++r)
    max8 = std::max(max8, op8.rank_memory_bytes(r));
  EXPECT_LT(max8, op1.rank_memory_bytes(0));
}

TEST(DistOperator, TrafficMatrixConservation) {
  // Forward exchange: total sent elements == total partial rows.
  const auto setup = make_setup(4);
  const DistOperator op(setup.a, setup.sino, setup.tomo);
  const auto x = testutil::random_vector(setup.a.num_cols, 74);
  AlignedVector<real> y(static_cast<std::size_t>(setup.a.num_rows));
  op.apply(x, y);
  std::int64_t total = 0;
  for (const auto v : op.traffic_matrix()) total += v;
  EXPECT_EQ(total, op.total_partial_rows());
}

TEST(DistOperator, SolverRunsUnchangedOnDistributedOperator) {
  // Plug-and-play: CGLS over the distributed operator equals CGLS over the
  // serial matrix.
  const auto setup = make_setup(6);
  const DistOperator dist_op(setup.a, setup.sino, setup.tomo);

  class SerialOp final : public solve::LinearOperator {
   public:
    explicit SerialOp(const sparse::CsrMatrix& a)
        : a_(a), at_(sparse::transpose(a)) {}
    idx_t num_rows() const override { return a_.num_rows; }
    idx_t num_cols() const override { return a_.num_cols; }
    void apply(std::span<const real> x, std::span<real> y) const override {
      sparse::spmv_csr(a_, x, y);
    }
    void apply_transpose(std::span<const real> y,
                         std::span<real> x) const override {
      sparse::spmv_csr(at_, y, x);
    }

   private:
    const sparse::CsrMatrix& a_;
    sparse::CsrMatrix at_;
  } serial_op(setup.a);

  const auto y = testutil::random_vector(setup.a.num_rows, 75);
  const auto r_dist = solve::cgls(dist_op, y, {.max_iterations = 8});
  const auto r_serial = solve::cgls(serial_op, y, {.max_iterations = 8});
  // CG amplifies float summation-order differences between the distributed
  // reduction and the serial kernel; a few percent drift after 8 iterations
  // is the expected envelope, not an algorithmic divergence.
  EXPECT_LT(testutil::rel_error(r_dist.x, r_serial.x), 2e-2);
}

class CompXctRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(CompXctRankSweep, DistributedCompXctMatchesSerialMatrix) {
  // Trace's parallelization (ray blocks + replicas + ring allreduce) must
  // compute the same forward/backprojection as the memoized serial matrix.
  const auto g = geometry::make_geometry(14, 16);
  const auto a = geometry::build_projection_matrix_natural(g);
  const auto at = sparse::transpose(a);
  const DistCompXctOperator op(g, GetParam());
  const auto x = testutil::random_vector(a.num_cols, 95);
  const auto y = testutil::random_vector(a.num_rows, 96);

  AlignedVector<real> y_dist(static_cast<std::size_t>(a.num_rows));
  AlignedVector<real> y_ref(static_cast<std::size_t>(a.num_rows));
  op.apply(x, y_dist);
  sparse::spmv_reference(a, x, y_ref);
  EXPECT_LT(testutil::rel_error(y_dist, y_ref), 1e-5);

  AlignedVector<real> x_dist(static_cast<std::size_t>(a.num_cols));
  AlignedVector<real> x_ref(static_cast<std::size_t>(a.num_cols));
  op.apply_transpose(y, x_dist);
  sparse::spmv_reference(at, y, x_ref);
  EXPECT_LT(testutil::rel_error(x_dist, x_ref), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Ranks, CompXctRankSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(DistCompXct, AllreduceBytesIndependentOfRanks) {
  // Table 1's contrast: Trace's per-rank allreduce traffic stays O(N²)
  // regardless of P (it is the whole duplicated domain), while MemXCT's
  // per-rank traffic shrinks with P.
  const auto g = geometry::make_geometry(12, 16);
  const auto y = testutil::random_vector(
      static_cast<idx_t>(g.sinogram_extent().size()), 97);
  AlignedVector<real> x(static_cast<std::size_t>(g.tomogram_extent().size()));
  std::int64_t bytes4 = 0, bytes8 = 0;
  {
    const DistCompXctOperator op(g, 4);
    op.apply_transpose(y, x);
    bytes4 = op.rank_bytes_sent(0);
  }
  {
    const DistCompXctOperator op(g, 8);
    op.apply_transpose(y, x);
    bytes8 = op.rank_bytes_sent(0);
  }
  const auto domain_bytes =
      static_cast<std::int64_t>(g.tomogram_extent().size()) * 4;
  // Ring allreduce: 2·(P-1)/P·N²·4 B per rank — within 2x of 2·N²·4 for
  // both P, i.e. NOT shrinking with P.
  EXPECT_GT(bytes4, domain_bytes);
  EXPECT_GT(bytes8, domain_bytes);
  EXPECT_LT(std::abs(bytes8 - bytes4), domain_bytes / 2);
  EXPECT_GT(DistCompXctOperator(g, 4).replica_bytes(), 0);
}

TEST(DistCompXct, SolverPlugAndPlay) {
  // SIRT through the distributed compute-centric operator equals SIRT
  // through the serial matrix (end-to-end, including the allreduce).
  const auto g = geometry::make_geometry(10, 12);
  const auto a = geometry::build_projection_matrix_natural(g);

  class SerialOp final : public solve::LinearOperator {
   public:
    explicit SerialOp(const sparse::CsrMatrix& m)
        : a_(m), at_(sparse::transpose(m)) {}
    idx_t num_rows() const override { return a_.num_rows; }
    idx_t num_cols() const override { return a_.num_cols; }
    void apply(std::span<const real> x, std::span<real> y) const override {
      sparse::spmv_csr(a_, x, y);
    }
    void apply_transpose(std::span<const real> y,
                         std::span<real> x) const override {
      sparse::spmv_csr(at_, y, x);
    }

   private:
    const sparse::CsrMatrix& a_;
    sparse::CsrMatrix at_;
  } serial(a);

  const DistCompXctOperator dist(g, 3);
  const auto y = testutil::random_vector(a.num_rows, 98);
  const auto r_dist = solve::sirt(dist, y, {.max_iterations = 6});
  const auto r_serial = solve::sirt(serial, y, {.max_iterations = 6});
  EXPECT_LT(testutil::rel_error(r_dist.x, r_serial.x), 1e-3);
}

TEST(DistOperator, RejectsMismatchedPartitions) {
  const auto setup = make_setup(2);
  const DomainPartition bad(3, {0, 10, 20, setup.a.num_rows});
  EXPECT_THROW(DistOperator(setup.a, bad, setup.tomo), InvariantError);
}

}  // namespace
}  // namespace memxct::dist
