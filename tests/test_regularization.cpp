// Tests for the Eq. 1 regularization options: Tikhonov-damped CGLS and
// non-negativity-constrained projected gradient descent.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "solve/cgls.hpp"
#include "solve/gd.hpp"
#include "solve/vector_ops.hpp"
#include "sparse/spmv.hpp"
#include "sparse/transpose.hpp"
#include "test_util.hpp"

namespace memxct::solve {
namespace {

class CsrOperator final : public LinearOperator {
 public:
  explicit CsrOperator(sparse::CsrMatrix a)
      : a_(std::move(a)), at_(sparse::transpose(a_)) {}
  idx_t num_rows() const override { return a_.num_rows; }
  idx_t num_cols() const override { return a_.num_cols; }
  void apply(std::span<const real> x, std::span<real> y) const override {
    sparse::spmv_csr(a_, x, y);
  }
  void apply_transpose(std::span<const real> y,
                       std::span<real> x) const override {
    sparse::spmv_csr(at_, y, x);
  }

 private:
  sparse::CsrMatrix a_;
  sparse::CsrMatrix at_;
};

TEST(Tikhonov, DampingShrinksSolutionNorm) {
  const auto a = testutil::random_csr(60, 40, 0.2, 3);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(60, 4);
  CglsOptions plain;
  plain.max_iterations = 40;
  CglsOptions damped = plain;
  damped.tikhonov_lambda = 2.0;
  CglsOptions heavier = plain;
  heavier.tikhonov_lambda = 8.0;
  const double n0 = norm2(cgls(op, y, plain).x);
  const double n2 = norm2(cgls(op, y, damped).x);
  const double n8 = norm2(cgls(op, y, heavier).x);
  EXPECT_GT(n0, n2);
  EXPECT_GT(n2, n8);
  EXPECT_GT(n8, 0.0);
}

TEST(Tikhonov, MatchesAugmentedSystemSolution) {
  // Damped CGLS must solve (A^T A + λ²I) x = A^T y. Verify the normal
  // equations' residual of the converged solution.
  const auto a = testutil::random_csr(30, 12, 0.4, 5);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(30, 6);
  const double lambda = 1.5;
  CglsOptions opt;
  opt.max_iterations = 200;
  opt.tikhonov_lambda = lambda;
  const auto result = cgls(op, y, opt);

  // g = A^T (y - A x) - λ² x must vanish at the regularized optimum.
  AlignedVector<real> ax(30), r(30), g(12);
  op.apply(result.x, ax);
  subtract(y, ax, r);
  op.apply_transpose(r, g);
  axpy(static_cast<real>(-lambda * lambda), result.x, g);
  EXPECT_LT(norm2(g), 1e-3 * (norm2(y) + 1.0));
}

TEST(Tikhonov, ZeroLambdaIsPlainCgls) {
  const auto a = testutil::random_csr(25, 15, 0.3, 7);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(25, 8);
  CglsOptions opt;
  opt.max_iterations = 10;
  CglsOptions zero = opt;
  zero.tikhonov_lambda = 0.0;
  const auto r1 = cgls(op, y, opt);
  const auto r2 = cgls(op, y, zero);
  for (std::size_t i = 0; i < r1.x.size(); ++i)
    EXPECT_FLOAT_EQ(r1.x[i], r2.x[i]);
}

TEST(WarmStart, ExactStartConvergesImmediately) {
  const auto a = testutil::random_csr(40, 20, 0.3, 9);
  const CsrOperator op(a);
  const auto x_true = testutil::random_vector(20, 10);
  AlignedVector<real> y(40);
  sparse::spmv_reference(a, x_true, y);
  // Solve once, then restart from the solution: residual already at floor.
  const auto first = cgls(op, y, {.max_iterations = 100});
  CglsOptions opt;
  opt.max_iterations = 5;
  const auto resumed = cgls_warm(op, y, first.x, opt);
  // Both residuals sit at the float precision floor, where the exact value
  // depends on the build's FP contraction; allow an absolute eps-scale slack
  // on top of the relative bound so sanitizer builds don't flake.
  EXPECT_LE(resumed.history.back().residual_norm,
            first.history.back().residual_norm * 1.1 + 1e-5 * norm2(y));
}

TEST(WarmStart, NearbyStartNeedsFewerIterations) {
  const auto a = testutil::random_csr(80, 50, 0.15, 11);
  const CsrOperator op(a);
  const auto x_true = testutil::random_vector(50, 12);
  AlignedVector<real> y(80);
  sparse::spmv_reference(a, x_true, y);
  // Perturb the true solution slightly — the "adjacent slice" scenario.
  AlignedVector<real> x0(x_true);
  Rng rng(13);
  for (auto& v : x0) v += static_cast<real>(0.01 * rng.normal());

  const double target = 0.01 * norm2(y);
  const auto iters_to = [&](std::span<const real> start) {
    const auto r = cgls_warm(op, y, start, {.max_iterations = 100});
    for (const auto& rec : r.history)
      if (rec.residual_norm < target) return rec.iteration;
    return 1000;
  };
  EXPECT_LT(iters_to(x0), iters_to({}));
}

TEST(WarmStart, RejectsWrongStartSize) {
  const auto a = testutil::random_csr(10, 5, 0.5, 15);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(10, 16);
  const AlignedVector<real> bad(3);
  EXPECT_THROW((void)cgls_warm(op, y, bad, {}), InvariantError);
}

TEST(NonNegative, ProjectedGdRespectsConstraint) {
  const auto a = testutil::random_csr(40, 25, 0.3, 17);
  const CsrOperator op(a);
  const auto y = testutil::random_vector(40, 18);
  GdOptions opt;
  opt.max_iterations = 30;
  opt.nonnegative = true;
  const auto result = gradient_descent(op, y, opt);
  for (const real v : result.x) EXPECT_GE(v, 0.0f);
}

TEST(NonNegative, MatchesUnconstrainedWhenSolutionIsPositive) {
  // Nonnegative ground truth and nonnegative matrix: the constraint is
  // inactive at the optimum, so both solvers converge to the same point.
  sparse::CsrBuilder b(30, 10);
  Rng rng(19);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < 30; ++r) {
    entries.clear();
    for (idx_t c = 0; c < 10; ++c)
      if (rng.uniform() < 0.4)
        entries.emplace_back(c, static_cast<real>(rng.uniform(0.1, 1.0)));
    if (r < 10) entries.emplace_back(r, 2.0f);
    b.set_row(r, entries);
  }
  const CsrOperator op(b.assemble());
  AlignedVector<real> x_true(10);
  for (auto& v : x_true) v = static_cast<real>(rng.uniform(0.5, 2.0));
  AlignedVector<real> y(30);
  op.apply(x_true, y);

  GdOptions unconstrained{.max_iterations = 200};
  GdOptions constrained{.max_iterations = 200, .nonnegative = true};
  const auto ru = gradient_descent(op, y, unconstrained);
  const auto rc = gradient_descent(op, y, constrained);
  EXPECT_LT(testutil::rel_error(rc.x, ru.x), 1e-2);
}

}  // namespace
}  // namespace memxct::solve
