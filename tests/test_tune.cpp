// Autotuner tests (src/tune): candidate enumeration/pruning, winner
// sanity, `.tune` persistence (bitwise round-trip, corruption fallback),
// Cached-mode determinism, the tuned-equals-explicit bitwise contract, and
// the registry's resolved-key behavior. Also the validate_config gate the
// tuner shares with the Reconstructor and serve admission.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/error.hpp"
#include "core/reconstructor.hpp"
#include "geometry/projector.hpp"
#include "phantom/phantom.hpp"
#include "resil/checked_io.hpp"
#include "serve/registry.hpp"
#include "tune/tune.hpp"

namespace {

namespace fs = std::filesystem;
using namespace memxct;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

geometry::Geometry small_geometry() { return geometry::make_geometry(36, 24); }

sparse::CsrMatrix small_matrix(const core::Config& config) {
  const auto g = small_geometry();
  const hilbert::Ordering sino(g.sinogram_extent(), config.ordering,
                               config.tile_size);
  const hilbert::Ordering tomo(g.tomogram_extent(), config.ordering,
                               config.tile_size);
  return geometry::build_projection_matrix(g, sino, tomo);
}

tune::TuneOptions quick_options() {
  tune::TuneOptions options;
  options.quick = true;
  options.reps = 2;
  return options;
}

std::vector<char> file_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// ---------------------------------------------------------------------------
// validate_config: the single source of truth shared by the Reconstructor,
// serve admission, and the tuner's candidate pruning.

TEST(ValidateConfig, DefaultConfigPasses) {
  EXPECT_NO_THROW(core::validate_config(core::Config{}));
}

TEST(ValidateConfig, ScalarRangeChecks) {
  core::Config config;
  config.num_ranks = 0;
  EXPECT_THROW(core::validate_config(config), InvalidArgument);
  config = core::Config{};
  config.num_shards = -1;
  EXPECT_THROW(core::validate_config(config), InvalidArgument);
}

TEST(ValidateConfig, PairwiseConflictsNameTheFlags) {
  {
    core::Config config;
    config.num_shards = 2;
    config.num_ranks = 2;
    try {
      core::validate_config(config);
      FAIL() << "expected UnsupportedConfigError";
    } catch (const UnsupportedConfigError& e) {
      EXPECT_EQ(e.flag_a(), "--shards");
      EXPECT_EQ(e.flag_b(), "--ranks");
    }
  }
  {
    core::Config config;
    config.num_ranks = 2;
    config.precision = sparse::ValueStorage::Bf16;
    try {
      core::validate_config(config);
      FAIL() << "expected UnsupportedConfigError";
    } catch (const UnsupportedConfigError& e) {
      EXPECT_EQ(e.flag_a(), "--ranks");
      EXPECT_EQ(e.flag_b(), "--precision");
    }
  }
  {
    core::Config config;
    config.kernel = core::KernelKind::EllBlock;
    config.precision = sparse::ValueStorage::Fp16;
    try {
      core::validate_config(config);
      FAIL() << "expected UnsupportedConfigError";
    } catch (const UnsupportedConfigError& e) {
      EXPECT_EQ(e.flag_a(), "--kernel");
      EXPECT_EQ(e.flag_b(), "--precision");
    }
  }
}

// ---------------------------------------------------------------------------
// Candidate enumeration.

TEST(TuneCandidates, BaseConfigIsFirstAndUnique) {
  core::Config base;
  const auto candidates = tune::enumerate_candidates(base);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].kernel, base.kernel);
  EXPECT_EQ(candidates[0].schedule, base.schedule);
  EXPECT_EQ(candidates[0].buffer.partsize, base.buffer.partsize);
  EXPECT_EQ(candidates[0].buffer.buffsize, base.buffer.buffsize);
  for (std::size_t i = 0; i < candidates.size(); ++i)
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      const bool same_kernel = candidates[i].kernel == candidates[j].kernel &&
                               candidates[i].schedule == candidates[j].schedule;
      const bool same_buffer =
          candidates[i].buffer.partsize == candidates[j].buffer.partsize &&
          candidates[i].buffer.buffsize == candidates[j].buffer.buffsize;
      EXPECT_FALSE(same_kernel &&
                   (candidates[i].kernel != core::KernelKind::Buffered ||
                    same_buffer))
          << "duplicate candidate at " << i << " and " << j;
    }
}

TEST(TuneCandidates, ReducedPrecisionPrunesEllBlock) {
  core::Config base;
  base.precision = sparse::ValueStorage::Bf16;
  const auto candidates = tune::enumerate_candidates(base);
  ASSERT_FALSE(candidates.empty());
  for (const auto& c : candidates)
    EXPECT_TRUE(c.kernel == core::KernelKind::Buffered ||
                c.kernel == core::KernelKind::Baseline)
        << "illegal kernel survived pruning at bf16";
}

TEST(TuneCandidates, QuickGridIsSmaller) {
  core::Config base;
  tune::TuneOptions quick;
  quick.quick = true;
  EXPECT_LT(tune::enumerate_candidates(base, quick).size(),
            tune::enumerate_candidates(base).size());
}

// ---------------------------------------------------------------------------
// Measurement.

TEST(TuneMeasure, WinnerIsNeverSlowerThanMeasuredBest) {
  core::Config base;
  const auto a = small_matrix(base);
  const auto choice = tune::measure_candidates(a, base, quick_options());
  ASSERT_FALSE(choice.candidates.empty());
  ASSERT_GE(choice.chosen_index, 0);
  double best = 0.0;
  for (const auto& c : choice.candidates) {
    EXPECT_GT(c.gbs, 0.0);
    EXPECT_GT(c.apply_seconds, 0.0);
    EXPECT_GT(c.transpose_seconds, 0.0);
    best = std::max(best, c.gbs);
  }
  const auto& chosen =
      choice.candidates[static_cast<std::size_t>(choice.chosen_index)];
  EXPECT_TRUE(chosen.chosen);
  // The acceptance bar: the winner is never a >5%-slower candidate than the
  // measured best (argmax makes it the best outright; the margin guards the
  // contract, not the implementation).
  EXPECT_GE(chosen.gbs, 0.95 * best);
}

// ---------------------------------------------------------------------------
// Persistence.

TEST(TunePersistence, RoundTripIsBitwiseIdempotent) {
  const TempDir tmp("memxct_tune_roundtrip");
  core::Config base;
  const auto a = small_matrix(base);
  auto choice = tune::measure_candidates(a, base, quick_options());
  choice.fingerprint = tune::tune_fingerprint(small_geometry(), base);
  choice.measure_seconds = 0.125;

  const auto p1 = (tmp.path / "a.tune").string();
  const auto p2 = (tmp.path / "b.tune").string();
  tune::save_tuned_choice(p1, choice);
  const auto loaded = tune::load_tuned_choice(p1);
  tune::save_tuned_choice(p2, loaded);

  EXPECT_EQ(loaded.fingerprint, choice.fingerprint);
  EXPECT_EQ(loaded.chosen_index, choice.chosen_index);
  EXPECT_EQ(loaded.candidates.size(), choice.candidates.size());
  const auto b1 = file_bytes(p1);
  const auto b2 = file_bytes(p2);
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2) << "save(load(save(x))) must be bitwise identical";
}

TEST(TunePersistence, CorruptFileThrowsOnLoad) {
  const TempDir tmp("memxct_tune_corrupt_load");
  core::Config base;
  const auto a = small_matrix(base);
  auto choice = tune::measure_candidates(a, base, quick_options());
  choice.fingerprint = "fp";
  const auto p = (tmp.path / "c.tune").string();
  tune::save_tuned_choice(p, choice);

  auto bytes = file_bytes(p);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  std::ofstream(p, std::ios::binary).write(bytes.data(),
                                           static_cast<long>(bytes.size()));
  EXPECT_THROW((void)tune::load_tuned_choice(p), IoError);
}

// ---------------------------------------------------------------------------
// End-to-end policy (autotune_operator).

TEST(TuneEndToEnd, CachedMeasuresOnceThenReplays) {
  const TempDir tmp("memxct_tune_cached");
  const auto g = small_geometry();
  core::Config base;
  base.cache_dir = tmp.path.string();
  base.autotune = core::AutotuneMode::Cached;
  const auto a = small_matrix(base);

  core::Config first = base;
  const auto r1 = tune::autotune_operator(g, first, a, quick_options());
  EXPECT_TRUE(r1.tuned);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_GT(r1.measure_seconds, 0.0);
  EXPECT_EQ(first.autotune, core::AutotuneMode::Off);
  ASSERT_FALSE(r1.tune_path.empty());
  EXPECT_TRUE(resil::file_exists(r1.tune_path));

  core::Config second = base;
  const auto r2 = tune::autotune_operator(g, second, a, quick_options());
  EXPECT_TRUE(r2.tuned);
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r2.measure_seconds, 0.0);  // pure replay: zero measurement time
  // The replay resolves to exactly the measured decision.
  EXPECT_EQ(second.kernel, first.kernel);
  EXPECT_EQ(second.schedule, first.schedule);
  EXPECT_EQ(second.buffer.partsize, first.buffer.partsize);
  EXPECT_EQ(second.buffer.buffsize, first.buffer.buffsize);
}

TEST(TuneEndToEnd, CorruptCacheFallsBackToMeasurement) {
  const TempDir tmp("memxct_tune_corrupt_e2e");
  const auto g = small_geometry();
  core::Config base;
  base.cache_dir = tmp.path.string();
  base.autotune = core::AutotuneMode::Cached;
  const auto a = small_matrix(base);

  core::Config first = base;
  const auto r1 = tune::autotune_operator(g, first, a, quick_options());
  ASSERT_TRUE(resil::file_exists(r1.tune_path));

  // Flip a payload byte: the CRC must reject it and the tuner re-measure.
  auto bytes = file_bytes(r1.tune_path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  std::ofstream(r1.tune_path, std::ios::binary)
      .write(bytes.data(), static_cast<long>(bytes.size()));

  core::Config second = base;
  const auto r2 = tune::autotune_operator(g, second, a, quick_options());
  EXPECT_TRUE(r2.tuned);
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_TRUE(r2.cache_corrupt);
  EXPECT_GT(r2.measure_seconds, 0.0);

  // The re-measurement rewrote the record; the next run replays cleanly.
  core::Config third = base;
  const auto r3 = tune::autotune_operator(g, third, a, quick_options());
  EXPECT_TRUE(r3.cache_hit);
  EXPECT_FALSE(r3.cache_corrupt);
}

TEST(TuneEndToEnd, ForceRemeasuresDespiteCache) {
  const TempDir tmp("memxct_tune_force");
  const auto g = small_geometry();
  core::Config base;
  base.cache_dir = tmp.path.string();
  base.autotune = core::AutotuneMode::Cached;
  const auto a = small_matrix(base);

  core::Config first = base;
  (void)tune::autotune_operator(g, first, a, quick_options());

  core::Config forced = base;
  forced.autotune = core::AutotuneMode::Force;
  const auto r = tune::autotune_operator(g, forced, a, quick_options());
  EXPECT_TRUE(r.tuned);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_GT(r.measure_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// The determinism contract: a tuned reconstruction is bitwise identical to
// an untuned run forced to the same resolved config.

TEST(TuneDeterminism, TunedEqualsExplicitResolvedConfig) {
  const TempDir tmp("memxct_tune_bitwise");
  const auto g = small_geometry();
  const auto image = phantom::shepp_logan(24);
  const auto sino = phantom::forward_project(g, image);

  core::Config tuned_config;
  tuned_config.iterations = 8;
  tuned_config.cache_dir = tmp.path.string();
  tuned_config.autotune = core::AutotuneMode::Cached;
  const core::Reconstructor tuned(g, tuned_config);
  EXPECT_TRUE(tuned.tune_report().tuned);
  EXPECT_GT(tuned.preprocess_report().tune_seconds, 0.0);

  // The resolved config IS the public contract: run it explicitly.
  core::Config explicit_config = tuned.config();
  EXPECT_EQ(explicit_config.autotune, core::AutotuneMode::Off);
  explicit_config.cache_dir.clear();  // no cache: forces a fresh trace too
  const core::Reconstructor untuned(g, explicit_config);
  EXPECT_FALSE(untuned.tune_report().tuned);

  const auto r1 = tuned.reconstruct(sino);
  const auto r2 = untuned.reconstruct(sino);
  ASSERT_EQ(r1.image.size(), r2.image.size());
  EXPECT_EQ(std::memcmp(r1.image.data(), r2.image.data(),
                        r1.image.size() * sizeof(real)),
            0)
      << "measurement must pick the config, never the arithmetic";
}

TEST(TuneDeterminism, PinnedTuneFileIsDeterministicEndToEnd) {
  const TempDir tmp("memxct_tune_pinned");
  const auto g = small_geometry();
  const auto image = phantom::shepp_logan(24);
  const auto sino = phantom::forward_project(g, image);

  core::Config config;
  config.iterations = 6;
  config.cache_dir = tmp.path.string();
  config.autotune = core::AutotuneMode::Cached;

  // First build measures and pins the .tune file.
  const core::Reconstructor first(g, config);
  const auto image1 = first.reconstruct(sino).image;

  // Every later Cached build replays the pinned decision: same resolved
  // config, zero measurement, bitwise-identical output.
  for (int run = 0; run < 2; ++run) {
    const core::Reconstructor replay(g, config);
    EXPECT_TRUE(replay.tune_report().cache_hit);
    EXPECT_EQ(replay.tune_report().measure_seconds, 0.0);
    EXPECT_EQ(replay.config().kernel, first.config().kernel);
    EXPECT_EQ(replay.config().schedule, first.config().schedule);
    EXPECT_EQ(replay.config().buffer.partsize,
              first.config().buffer.partsize);
    EXPECT_EQ(replay.config().buffer.buffsize,
              first.config().buffer.buffsize);
    const auto image2 = replay.reconstruct(sino).image;
    ASSERT_EQ(image1.size(), image2.size());
    EXPECT_EQ(std::memcmp(image1.data(), image2.data(),
                          image1.size() * sizeof(real)),
              0);
  }
}

// ---------------------------------------------------------------------------
// Registry integration: tuned acquires key by the RESOLVED config.

TEST(TuneRegistry, TunedAcquiresShareOneResolvedEntry) {
  const TempDir tmp("memxct_tune_registry");
  const auto g = small_geometry();
  serve::RegistryOptions opt;
  opt.disk_cache_dir = tmp.path.string();
  serve::OperatorRegistry registry(opt);

  core::Config config;
  config.autotune = core::AutotuneMode::Cached;

  const auto first = registry.acquire(g, config);
  EXPECT_TRUE(first.tuned);
  EXPECT_FALSE(first.hit);
  auto stats = registry.stats();
  EXPECT_EQ(stats.tuned_builds, 1);
  EXPECT_EQ(stats.builds, 1);

  // Second tuned acquire: the in-process resolution maps it straight onto
  // the resolved key — a memory hit, no build, no measurement.
  const auto second = registry.acquire(g, config);
  EXPECT_TRUE(second.tuned);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.key.text, first.key.text);
  stats = registry.stats();
  EXPECT_EQ(stats.builds, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_GE(stats.tune_cache_hits, 1);

  // An EXPLICIT request for the resolved config lands on the same entry.
  core::Config resolved = first.recon->config();
  resolved.cache_dir.clear();
  const auto explicit_lease = registry.acquire(g, resolved);
  EXPECT_TRUE(explicit_lease.hit);
  EXPECT_EQ(explicit_lease.key.text, first.key.text);
  stats = registry.stats();
  EXPECT_EQ(stats.builds, 1);
  EXPECT_EQ(stats.hits, 2);
  EXPECT_GT(stats.tune_measure_ms, 0.0);
}

}  // namespace
