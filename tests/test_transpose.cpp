// Tests for the scan-based order-preserving transposition (Section 3.5.1).
#include <gtest/gtest.h>

#include "sparse/transpose.hpp"
#include "test_util.hpp"

namespace memxct::sparse {
namespace {

struct TransposeCase {
  idx_t rows, cols;
  double density;
};

class TransposeSweep : public ::testing::TestWithParam<TransposeCase> {};

TEST_P(TransposeSweep, DoubleTransposeIsIdentity) {
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 7);
  const CsrMatrix att = transpose(transpose(a));
  ASSERT_EQ(att.num_rows, a.num_rows);
  ASSERT_EQ(att.num_cols, a.num_cols);
  ASSERT_EQ(att.nnz(), a.nnz());
  for (idx_t r = 0; r <= a.num_rows; ++r) EXPECT_EQ(att.displ[r], a.displ[r]);
  for (nnz_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(att.ind[k], a.ind[k]);
    EXPECT_FLOAT_EQ(att.val[k], a.val[k]);
  }
}

TEST_P(TransposeSweep, IsTrueAdjoint) {
  // <A x, y> == <x, A^T y> for random vectors.
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 11);
  const CsrMatrix at = transpose(a);
  const auto x = testutil::random_vector(param.cols, 1);
  const auto y = testutil::random_vector(param.rows, 2);
  AlignedVector<real> ax(static_cast<std::size_t>(param.rows));
  AlignedVector<real> aty(static_cast<std::size_t>(param.cols));
  spmv_reference(a, x, ax);
  spmv_reference(at, y, aty);
  double lhs = 0.0, rhs = 0.0;
  for (idx_t i = 0; i < param.rows; ++i)
    lhs += static_cast<double>(ax[i]) * y[i];
  for (idx_t i = 0; i < param.cols; ++i)
    rhs += static_cast<double>(x[i]) * aty[i];
  const double scale = std::max({std::abs(lhs), std::abs(rhs), 1.0});
  EXPECT_NEAR(lhs / scale, rhs / scale, 1e-5);
}

TEST_P(TransposeSweep, TransposedRowsAreSorted) {
  // The order-preserving property: each transposed row's indices ascend,
  // i.e. the scan placement kept original-row order.
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 13);
  const CsrMatrix at = transpose(a);
  EXPECT_NO_THROW(at.validate());  // validate() checks strict sorting
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposeSweep,
    ::testing::Values(TransposeCase{1, 1, 1.0}, TransposeCase{10, 10, 0.3},
                      TransposeCase{50, 20, 0.1}, TransposeCase{20, 50, 0.1},
                      TransposeCase{100, 100, 0.05},
                      TransposeCase{64, 256, 0.02},
                      TransposeCase{7, 3, 0.9}, TransposeCase{40, 40, 0.0}));

TEST(Transpose, EmptyMatrix) {
  CsrBuilder b(3, 5);
  const CsrMatrix a = b.assemble();
  const CsrMatrix at = transpose(a);
  EXPECT_EQ(at.num_rows, 5);
  EXPECT_EQ(at.num_cols, 3);
  EXPECT_EQ(at.nnz(), 0);
}

TEST(TransposeAtomic, NumericallyEquivalentToScan) {
  // The atomic variant is a correct transpose — same values per row, just
  // potentially reordered within rows.
  const CsrMatrix a = testutil::random_csr(60, 40, 0.2, 17);
  const CsrMatrix scan = transpose(a);
  const CsrMatrix atomic = transpose_atomic(a);
  ASSERT_EQ(atomic.nnz(), scan.nnz());
  for (idx_t r = 0; r <= atomic.num_rows; ++r)
    EXPECT_EQ(atomic.displ[r], scan.displ[r]);
  // Compare row contents as multisets of (index, value).
  for (idx_t r = 0; r < atomic.num_rows; ++r) {
    std::vector<std::pair<idx_t, real>> sa, ss;
    for (nnz_t k = scan.displ[r]; k < scan.displ[r + 1]; ++k) {
      ss.emplace_back(scan.ind[k], scan.val[k]);
      sa.emplace_back(atomic.ind[k], atomic.val[k]);
    }
    std::sort(sa.begin(), sa.end());
    std::sort(ss.begin(), ss.end());
    EXPECT_EQ(sa, ss) << "row " << r;
  }
}

TEST(TransposeAtomic, MultiplyAgreesWithScanTranspose) {
  const CsrMatrix a = testutil::random_csr(50, 30, 0.25, 19);
  const CsrMatrix scan = transpose(a);
  const CsrMatrix atomic = transpose_atomic(a);
  const auto y = testutil::random_vector(50, 20);
  AlignedVector<real> xs(30), xa(30);
  spmv_reference(scan, y, xs);
  // spmv_reference requires sorted rows; use a manual accumulation for the
  // (possibly unsorted) atomic result.
  for (idx_t r = 0; r < atomic.num_rows; ++r) {
    double acc = 0.0;
    for (nnz_t k = atomic.displ[r]; k < atomic.displ[r + 1]; ++k)
      acc += static_cast<double>(y[static_cast<std::size_t>(atomic.ind[k])]) *
             atomic.val[k];
    xa[static_cast<std::size_t>(r)] = static_cast<real>(acc);
  }
  EXPECT_LT(testutil::max_abs_diff(xa, xs), 1e-4);
}

TEST(Transpose, KnownSmallCase) {
  // [1 2; 0 3] -> [1 0; 2 3]
  CsrBuilder b(2, 2);
  const std::vector<std::pair<idx_t, real>> r0{{0, 1.0f}, {1, 2.0f}};
  const std::vector<std::pair<idx_t, real>> r1{{1, 3.0f}};
  b.set_row(0, r0);
  b.set_row(1, r1);
  const CsrMatrix at = transpose(b.assemble());
  EXPECT_EQ(at.nnz(), 3);
  EXPECT_EQ(at.displ[1], 1);  // column 0 had one entry
  EXPECT_FLOAT_EQ(at.val[0], 1.0f);
  EXPECT_EQ(at.ind[1], 0);
  EXPECT_FLOAT_EQ(at.val[1], 2.0f);
  EXPECT_FLOAT_EQ(at.val[2], 3.0f);
}

}  // namespace
}  // namespace memxct::sparse
