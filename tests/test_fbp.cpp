// Tests for the filtered-backprojection baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "phantom/analytic.hpp"
#include "phantom/phantom.hpp"
#include "solve/fbp.hpp"

namespace memxct::solve {
namespace {

TEST(FbpFilterResponse, RampShape) {
  const auto response = fbp_filter_response(64, FbpFilter::Ramp);
  EXPECT_DOUBLE_EQ(response[0], 0.0);      // DC removed
  EXPECT_DOUBLE_EQ(response[32], 0.5);     // Nyquist = |0.5|
  EXPECT_NEAR(response[16], 0.25, 1e-12);  // linear in |freq|
  EXPECT_DOUBLE_EQ(response[1], response[63]);  // even symmetry
}

TEST(FbpFilterResponse, WindowsAttenuateHighFrequencies) {
  const auto ramp = fbp_filter_response(64, FbpFilter::Ramp);
  const auto shepp = fbp_filter_response(64, FbpFilter::SheppLogan);
  const auto hann = fbp_filter_response(64, FbpFilter::Hann);
  // At Nyquist: Hann kills it entirely, Shepp-Logan partially.
  EXPECT_NEAR(hann[32], 0.0, 1e-12);
  EXPECT_LT(shepp[32], ramp[32]);
  EXPECT_GT(shepp[32], 0.0);
  // At low frequency all are close to the ramp.
  EXPECT_NEAR(shepp[2], ramp[2], 0.05 * ramp[2] + 1e-12);
}

TEST(Fbp, RecoversSheppLoganFromCleanAnalyticData) {
  const idx_t n = 96;
  const auto g = geometry::make_geometry(180, n);  // dense angular sampling
  const auto ellipses = phantom::shepp_logan_ellipses(n);
  const auto sinogram = phantom::analytic_sinogram(g, ellipses);
  const auto truth = phantom::render_analytic(n, ellipses);
  const auto image = fbp_reconstruct(g, sinogram);
  // Compare inside the reconstruction circle (FBP corrupts corners).
  double num = 0.0, den = 0.0;
  const double half = n / 2.0;
  for (idx_t r = 0; r < n; ++r)
    for (idx_t c = 0; c < n; ++c) {
      const double y = r + 0.5 - half, x = c + 0.5 - half;
      if (x * x + y * y > 0.8 * half * half) continue;
      const auto i = static_cast<std::size_t>(r) * n + c;
      const double d = static_cast<double>(image[i]) - truth[i];
      num += d * d;
      den += static_cast<double>(truth[i]) * truth[i];
    }
  EXPECT_LT(std::sqrt(num / den), 0.15);
}

TEST(Fbp, ZeroSinogramGivesZeroImage) {
  const auto g = geometry::make_geometry(16, 32);
  const AlignedVector<real> zero(
      static_cast<std::size_t>(g.sinogram_extent().size()), 0.0f);
  const auto image = fbp_reconstruct(g, zero);
  for (const real v : image) EXPECT_NEAR(v, 0.0f, 1e-9);
}

TEST(Fbp, LinearInMeasurements) {
  const auto g = geometry::make_geometry(24, 32);
  const auto ellipses = phantom::shepp_logan_ellipses(32);
  auto sino = phantom::analytic_sinogram(g, ellipses);
  const auto image1 = fbp_reconstruct(g, sino);
  for (auto& v : sino) v *= 3.0f;
  const auto image3 = fbp_reconstruct(g, sino);
  for (std::size_t i = 0; i < image1.size(); ++i)
    EXPECT_NEAR(image3[i], 3.0f * image1[i], 1e-3 + 3e-3 * std::abs(image1[i]));
}

TEST(Fbp, HannIsSmootherThanRampOnNoise) {
  // Reconstructing pure noise: the Hann window must yield lower image
  // variance than the raw ramp.
  const auto g = geometry::make_geometry(64, 64);
  Rng rng(3);
  AlignedVector<real> noise(
      static_cast<std::size_t>(g.sinogram_extent().size()));
  for (auto& v : noise) v = static_cast<real>(rng.normal());
  const auto variance = [](const std::vector<real>& img) {
    double mean = 0.0;
    for (const real v : img) mean += v;
    mean /= static_cast<double>(img.size());
    double var = 0.0;
    for (const real v : img) var += (v - mean) * (v - mean);
    return var / static_cast<double>(img.size());
  };
  const auto ramp = fbp_reconstruct(g, noise, {FbpFilter::Ramp});
  const auto hann = fbp_reconstruct(g, noise, {FbpFilter::Hann});
  EXPECT_LT(variance(hann), variance(ramp));
}

TEST(Fbp, QualityDegradesWithUndersampling) {
  // The paper's motivating claim: FBP needs dense angular sampling. Halve
  // and quarter the angle count; reconstruction error must rise.
  const idx_t n = 64;
  const auto ellipses = phantom::shepp_logan_ellipses(n);
  const auto truth = phantom::render_analytic(n, ellipses);
  const auto rmse_at_angles = [&](idx_t angles) {
    const auto g = geometry::make_geometry(angles, n);
    const auto sino = phantom::analytic_sinogram(g, ellipses);
    return phantom::rmse(fbp_reconstruct(g, sino), truth);
  };
  const double dense = rmse_at_angles(128);
  const double sparse = rmse_at_angles(16);
  EXPECT_GT(sparse, 1.3 * dense);
}

TEST(Fbp, RejectsWrongSinogramSize) {
  const auto g = geometry::make_geometry(8, 16);
  const AlignedVector<real> wrong(10);
  EXPECT_THROW(fbp_reconstruct(g, wrong), InvariantError);
}

}  // namespace
}  // namespace memxct::solve
