// Tests for the two-level pseudo-Hilbert ordering (Section 3.2).
#include <gtest/gtest.h>

#include <set>

#include "hilbert/locality.hpp"
#include "hilbert/ordering.hpp"

namespace memxct::hilbert {
namespace {

struct OrderingCase {
  Extent2D extent;
  CurveKind kind;
  idx_t tile_size;
};

class OrderingSweep : public ::testing::TestWithParam<OrderingCase> {};

TEST_P(OrderingSweep, IsBijection) {
  const auto& param = GetParam();
  const Ordering ord(param.extent, param.kind, param.tile_size);
  ASSERT_EQ(static_cast<std::int64_t>(ord.size()), param.extent.size());
  std::set<idx_t> grid_indices;
  for (idx_t i = 0; i < ord.size(); ++i) {
    const idx_t g = ord.grid_index(i);
    EXPECT_GE(g, 0);
    EXPECT_LT(static_cast<std::int64_t>(g), param.extent.size());
    grid_indices.insert(g);
    // Inverse consistency.
    const Cell c = ord.cell(i);
    EXPECT_EQ(ord.ordered_index(c.row, c.col), i);
  }
  EXPECT_EQ(static_cast<std::int64_t>(grid_indices.size()),
            param.extent.size());
}

TEST_P(OrderingSweep, TilesAreContiguousAndCoverDomain) {
  const auto& param = GetParam();
  const Ordering ord(param.extent, param.kind, param.tile_size);
  idx_t covered = 0;
  idx_t prev_end = 0;
  for (idx_t t = 0; t < ord.num_tiles(); ++t) {
    const auto [begin, end] = ord.tile_range(t);
    EXPECT_EQ(begin, prev_end);
    EXPECT_LE(begin, end);
    covered += end - begin;
    prev_end = end;
  }
  EXPECT_EQ(covered, ord.size());
}

TEST_P(OrderingSweep, TilesAreSpatiallyCompact) {
  const auto& param = GetParam();
  if (param.kind == CurveKind::RowMajor) return;  // tiles are rows there
  const Ordering ord(param.extent, param.kind, param.tile_size);
  const idx_t a = ord.tile_size();
  for (idx_t t = 0; t < ord.num_tiles(); ++t) {
    const auto [begin, end] = ord.tile_range(t);
    idx_t rmin = param.extent.rows, rmax = 0;
    idx_t cmin = param.extent.cols, cmax = 0;
    for (idx_t i = begin; i < end; ++i) {
      const Cell c = ord.cell(i);
      rmin = std::min(rmin, c.row);
      rmax = std::max(rmax, c.row);
      cmin = std::min(cmin, c.col);
      cmax = std::max(cmax, c.col);
    }
    if (begin == end) continue;
    EXPECT_LT(rmax - rmin, a);
    EXPECT_LT(cmax - cmin, a);
  }
}

TEST_P(OrderingSweep, TileOfOrderedConsistent) {
  const auto& param = GetParam();
  const Ordering ord(param.extent, param.kind, param.tile_size);
  for (idx_t t = 0; t < ord.num_tiles(); ++t) {
    const auto [begin, end] = ord.tile_range(t);
    if (begin < end) {
      EXPECT_EQ(ord.tile_of_ordered(begin), t);
      EXPECT_EQ(ord.tile_of_ordered(end - 1), t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OrderingSweep,
    ::testing::Values(
        OrderingCase{{13, 11}, CurveKind::Hilbert, 4},  // paper's Fig 4
        OrderingCase{{16, 16}, CurveKind::Hilbert, 4},
        OrderingCase{{16, 16}, CurveKind::Morton, 4},
        OrderingCase{{16, 16}, CurveKind::RowMajor, 0},
        OrderingCase{{1, 1}, CurveKind::Hilbert, 4},
        OrderingCase{{1, 37}, CurveKind::Hilbert, 4},
        OrderingCase{{37, 1}, CurveKind::Hilbert, 4},
        OrderingCase{{45, 32}, CurveKind::Hilbert, 8},
        OrderingCase{{45, 32}, CurveKind::Morton, 8},
        OrderingCase{{64, 64}, CurveKind::Hilbert, 16},
        OrderingCase{{100, 60}, CurveKind::Hilbert, 0},   // auto tile
        OrderingCase{{60, 100}, CurveKind::Morton, 0},
        OrderingCase{{128, 96}, CurveKind::Hilbert, 32},
        OrderingCase{{31, 17}, CurveKind::Hilbert, 4}));

// Degenerate and prime-dimension extents, every curve kind: 1×N and N×1
// strips (prime lengths, tiles wider than the strip), prime×prime domains,
// and off-pow2 shapes. Bijectivity here is what guarantees the permuted
// projection matrix neither drops nor duplicates rays/pixels.
INSTANTIATE_TEST_SUITE_P(
    EdgeShapes, OrderingSweep,
    ::testing::Values(
        OrderingCase{{1, 97}, CurveKind::Hilbert, 8},
        OrderingCase{{97, 1}, CurveKind::Hilbert, 8},
        OrderingCase{{1, 97}, CurveKind::Morton, 8},
        OrderingCase{{97, 1}, CurveKind::Morton, 8},
        OrderingCase{{1, 131}, CurveKind::RowMajor, 0},
        OrderingCase{{131, 1}, CurveKind::RowMajor, 0},
        OrderingCase{{29, 23}, CurveKind::Hilbert, 4},
        OrderingCase{{23, 29}, CurveKind::Morton, 4},
        OrderingCase{{37, 37}, CurveKind::Hilbert, 0},  // prime square, auto
        OrderingCase{{2, 127}, CurveKind::Hilbert, 4},
        OrderingCase{{127, 2}, CurveKind::Hilbert, 4},
        OrderingCase{{63, 65}, CurveKind::Hilbert, 16},
        OrderingCase{{65, 63}, CurveKind::Morton, 16},
        OrderingCase{{5, 3}, CurveKind::Hilbert, 16}));  // tile > domain

TEST(Ordering, RowMajorIsIdentity) {
  const Extent2D ext{5, 9};
  const Ordering ord(ext, CurveKind::RowMajor);
  for (idx_t i = 0; i < ord.size(); ++i) EXPECT_EQ(ord.grid_index(i), i);
}

TEST(Ordering, HilbertFullyConnectedOnPow2Square) {
  // On a power-of-two square with a single tile, the ordering is the plain
  // Hilbert curve: 100% adjacent steps.
  const Ordering ord(Extent2D{32, 32}, CurveKind::Hilbert, 32);
  EXPECT_DOUBLE_EQ(adjacency_fraction(ord), 1.0);
}

TEST(Ordering, HilbertBeatsMortonOnConnectivity) {
  const Extent2D ext{64, 48};
  const Ordering hilbert(ext, CurveKind::Hilbert, 8);
  const Ordering morton(ext, CurveKind::Morton, 8);
  EXPECT_GT(adjacency_fraction(hilbert), adjacency_fraction(morton));
  EXPECT_LT(mean_step_length(hilbert), mean_step_length(morton));
  // The two-level Hilbert construction with connective rotations stays
  // nearly fully connected even across tiles.
  EXPECT_GT(adjacency_fraction(hilbert), 0.95);
}

TEST(Ordering, HilbertBeatsRowMajorOnWindowLocality) {
  // A cache line's worth of consecutive Hilbert indices covers a compact
  // 2D block (Fig 5's premise); row-major covers a 1x16 sliver.
  const Extent2D ext{64, 64};
  const Ordering hilbert(ext, CurveKind::Hilbert, 16);
  const idx_t window = 16;  // 64 B line / 4 B value
  double hilbert_extent = 0.0;
  for (idx_t i = 0; i + window <= hilbert.size(); i += window) {
    idx_t rmin = ext.rows, rmax = 0, cmin = ext.cols, cmax = 0;
    for (idx_t j = i; j < i + window; ++j) {
      const Cell c = hilbert.cell(j);
      rmin = std::min(rmin, c.row);
      rmax = std::max(rmax, c.row);
      cmin = std::min(cmin, c.col);
      cmax = std::max(cmax, c.col);
    }
    hilbert_extent =
        std::max(hilbert_extent, static_cast<double>(rmax - rmin + cmax - cmin));
  }
  EXPECT_LE(hilbert_extent, 8.0);  // 4x4-ish blocks, never a 16-sliver
}

TEST(Ordering, DefaultTileSizeIsPow2AndBounded) {
  for (const Extent2D ext : {Extent2D{13, 11}, Extent2D{360, 256},
                             Extent2D{2048, 2048}, Extent2D{4, 4}}) {
    const idx_t a = default_tile_size(ext);
    EXPECT_TRUE(is_pow2(a));
    EXPECT_GE(a, 4);
    EXPECT_LE(a, 1024);
  }
}

TEST(Ordering, Fig4TileCount) {
  // Paper Fig 4: a 13x11 domain with 4x4 tiles uses 12 tiles.
  const Ordering ord(Extent2D{11, 13}, CurveKind::Hilbert, 4);
  EXPECT_EQ(ord.num_tiles(), 12);
}

TEST(Ordering, RejectsNonPow2Tile) {
  EXPECT_THROW(Ordering(Extent2D{8, 8}, CurveKind::Hilbert, 3),
               InvariantError);
}

TEST(Locality, LinesTouched) {
  EXPECT_EQ(lines_touched(0, 16, 16), 1);
  EXPECT_EQ(lines_touched(0, 17, 16), 2);
  EXPECT_EQ(lines_touched(15, 17, 16), 2);
  EXPECT_EQ(lines_touched(5, 5, 16), 0);
  EXPECT_EQ(lines_touched(32, 48, 16), 1);
}

}  // namespace
}  // namespace memxct::hilbert
