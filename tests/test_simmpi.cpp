// Tests for the simulated message-passing runtime.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "dist/simmpi.hpp"
#include "resil/fault.hpp"

namespace memxct::dist {
namespace {

TEST(SimComm, AlltoallvMovesDataCorrectly) {
  SimComm comm(3);
  // Rank p sends value 100*p + q to rank q.
  std::vector<AlignedVector<real>> send(3);
  std::vector<std::vector<nnz_t>> send_displ(3);
  for (int p = 0; p < 3; ++p) {
    send[p] = {static_cast<real>(100 * p + 0), static_cast<real>(100 * p + 1),
               static_cast<real>(100 * p + 2)};
    send_displ[p] = {0, 1, 2, 3};
  }
  std::vector<AlignedVector<real>> recv;
  comm.alltoallv(send, send_displ, recv);
  for (int q = 0; q < 3; ++q) {
    ASSERT_EQ(recv[q].size(), 3u);
    for (int p = 0; p < 3; ++p)
      EXPECT_FLOAT_EQ(recv[q][static_cast<std::size_t>(p)],
                      static_cast<real>(100 * p + q));
  }
}

TEST(SimComm, VariableCountsAndEmptyPairs) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0] = {1.0f, 2.0f, 3.0f};  // all to rank 1
  send_displ[0] = {0, 0, 3};
  send[1] = {};  // sends nothing
  send_displ[1] = {0, 0, 0};
  std::vector<AlignedVector<real>> recv;
  comm.alltoallv(send, send_displ, recv);
  EXPECT_TRUE(recv[0].empty());
  ASSERT_EQ(recv[1].size(), 3u);
  EXPECT_FLOAT_EQ(recv[1][2], 3.0f);
  // recv_displ groups by source.
  EXPECT_EQ(comm.recv_displ(1)[0], 0);
  EXPECT_EQ(comm.recv_displ(1)[1], 3);  // 3 from rank 0
  EXPECT_EQ(comm.recv_displ(1)[2], 3);  // 0 from rank 1
}

TEST(SimComm, StatsExcludeSelfTraffic) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0] = {1.0f, 2.0f};  // one element to self, one to rank 1
  send_displ[0] = {0, 1, 2};
  send[1] = {};
  send_displ[1] = {0, 0, 0};
  std::vector<AlignedVector<real>> recv;
  comm.alltoallv(send, send_displ, recv);
  EXPECT_EQ(comm.last_stats(0).bytes_sent,
            static_cast<std::int64_t>(sizeof(real)));
  EXPECT_EQ(comm.last_stats(0).messages_sent, 1);
  EXPECT_EQ(comm.last_stats(1).bytes_received,
            static_cast<std::int64_t>(sizeof(real)));
  // Traffic matrix still includes self (for Fig 7 totals).
  EXPECT_EQ(comm.traffic_matrix()[0 * 2 + 0], 1);
  EXPECT_EQ(comm.traffic_matrix()[0 * 2 + 1], 1);
}

TEST(SimComm, StatsAccumulateAndReset) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0] = {1.0f};
  send_displ[0] = {0, 0, 1};
  send[1] = {};
  send_displ[1] = {0, 0, 0};
  std::vector<AlignedVector<real>> recv;
  comm.alltoallv(send, send_displ, recv);
  comm.alltoallv(send, send_displ, recv);
  EXPECT_EQ(comm.total_stats(0).messages_sent, 2);
  comm.reset_stats();
  EXPECT_EQ(comm.total_stats(0).messages_sent, 0);
  EXPECT_EQ(comm.traffic_matrix()[1], 0);
}

TEST(SimComm, ModeledExchangeTimePositiveAndBandwidthSensitive) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0].assign(10000, 1.0f);
  send_displ[0] = {0, 0, 10000};
  send[1] = {};
  send_displ[1] = {0, 0, 0};
  std::vector<AlignedVector<real>> recv;
  comm.alltoallv(send, send_displ, recv);
  const double theta = comm.last_exchange_seconds(perf::machine("Theta"));
  const double bw = comm.last_exchange_seconds(perf::machine("BlueWaters"));
  EXPECT_GT(theta, 0.0);
  EXPECT_GT(bw, theta);  // Blue Waters' Gemini is slower than Theta's Aries
}

TEST(SimComm, FaultHookPerturbsOffRankBlocksOnly) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0] = {1.0f, 2.0f};  // one element to self, one to rank 1
  send_displ[0] = {0, 1, 2};
  send[1] = {3.0f};  // one element to rank 0
  send_displ[1] = {0, 1, 1};
  comm.set_fault_hook([](int, int, std::span<real> payload) {
    payload[0] = 999.0f;
    return payload.size();
  });
  std::vector<AlignedVector<real>> recv;
  comm.alltoallv(send, send_displ, recv);
  EXPECT_FLOAT_EQ(recv[0][0], 1.0f);    // self block untouched
  EXPECT_FLOAT_EQ(recv[0][1], 999.0f);  // from rank 1: perturbed
  EXPECT_FLOAT_EQ(recv[1][0], 999.0f);  // from rank 0: perturbed
}

TEST(SimComm, TruncatedExchangeZeroFillsWithoutValidation) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0] = {1.0f, 2.0f, 3.0f, 4.0f};  // all to rank 1
  send_displ[0] = {0, 0, 4};
  send[1] = {};
  send_displ[1] = {0, 0, 0};
  comm.set_fault_hook(resil::FaultInjector::truncate_exchange_hook(0.5));
  std::vector<AlignedVector<real>> recv;
  comm.alltoallv(send, send_displ, recv);
  ASSERT_EQ(recv[1].size(), 4u);
  EXPECT_FLOAT_EQ(recv[1][0], 1.0f);
  EXPECT_FLOAT_EQ(recv[1][1], 2.0f);
  EXPECT_FLOAT_EQ(recv[1][2], 0.0f);  // undelivered tail zero-filled
  EXPECT_FLOAT_EQ(recv[1][3], 0.0f);
}

TEST(SimComm, ValidationDetectsTruncatedExchange) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0] = {1.0f, 2.0f, 3.0f, 4.0f};
  send_displ[0] = {0, 0, 4};
  send[1] = {};
  send_displ[1] = {0, 0, 0};
  comm.set_fault_hook(resil::FaultInjector::truncate_exchange_hook(0.5));
  comm.set_validation(true);
  std::vector<AlignedVector<real>> recv;
  EXPECT_THROW(comm.alltoallv(send, send_displ, recv), IoError);
}

TEST(SimComm, ValidationDetectsNonFinitePayload) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0] = {1.0f, 2.0f};
  send_displ[0] = {0, 0, 2};
  send[1] = {};
  send_displ[1] = {0, 0, 0};
  resil::FaultInjector inject(11);
  comm.set_fault_hook(inject.nan_exchange_hook(1.0));
  comm.set_validation(true);
  std::vector<AlignedVector<real>> recv;
  EXPECT_THROW(comm.alltoallv(send, send_displ, recv), IoError);
}

TEST(SimComm, ValidationPassesCleanExchange) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0] = {1.0f, 2.0f};
  send_displ[0] = {0, 0, 2};
  send[1] = {};
  send_displ[1] = {0, 0, 0};
  comm.set_validation(true);
  std::vector<AlignedVector<real>> recv;
  comm.alltoallv(send, send_displ, recv);
  EXPECT_FLOAT_EQ(recv[1][1], 2.0f);
}

TEST(SimComm, MismatchedDisplRejected) {
  SimComm comm(2);
  std::vector<AlignedVector<real>> send(2);
  std::vector<std::vector<nnz_t>> send_displ(2);
  send[0] = {1.0f};
  send_displ[0] = {0, 0, 2};  // claims 2 elements, buffer has 1
  send[1] = {};
  send_displ[1] = {0, 0, 0};
  std::vector<AlignedVector<real>> recv;
  EXPECT_THROW(comm.alltoallv(send, send_displ, recv), InvariantError);
}

}  // namespace
}  // namespace memxct::dist
