// Shared helpers for the MemXCT test suite.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace memxct::testutil {

/// Random CSR matrix with approximately `density` fill.
inline sparse::CsrMatrix random_csr(idx_t rows, idx_t cols, double density,
                                    std::uint64_t seed) {
  Rng rng(seed);
  sparse::CsrBuilder b(rows, cols);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < rows; ++r) {
    entries.clear();
    for (idx_t c = 0; c < cols; ++c)
      if (rng.uniform() < density)
        entries.emplace_back(c, static_cast<real>(rng.uniform(-2.0, 2.0)));
    b.set_row(r, entries);
  }
  return b.assemble();
}

/// Banded matrix whose rows touch a compact column window — structurally
/// similar to a Hilbert-ordered projection matrix (compact footprints).
inline sparse::CsrMatrix banded_csr(idx_t rows, idx_t cols, idx_t bandwidth,
                                    std::uint64_t seed) {
  Rng rng(seed);
  sparse::CsrBuilder b(rows, cols);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < rows; ++r) {
    entries.clear();
    const idx_t center = static_cast<idx_t>(
        static_cast<std::int64_t>(r) * cols / (rows > 0 ? rows : 1));
    for (idx_t d = -bandwidth; d <= bandwidth; ++d) {
      const idx_t c = center + d;
      if (c >= 0 && c < cols && rng.uniform() < 0.6)
        entries.emplace_back(c, static_cast<real>(rng.uniform(0.1, 1.0)));
    }
    b.set_row(r, entries);
  }
  return b.assemble();
}

/// Random vector in [-1, 1).
inline AlignedVector<real> random_vector(idx_t n, std::uint64_t seed) {
  Rng rng(seed);
  AlignedVector<real> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<real>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Max absolute difference between two vectors.
inline double max_abs_diff(std::span<const real> a, std::span<const real> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

/// Relative L2 error ||a-b|| / max(||b||, eps).
inline double rel_error(std::span<const real> a, std::span<const real> b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    num += d * d;
    den += static_cast<double>(b[i]) * b[i];
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-30);
}

}  // namespace memxct::testutil
