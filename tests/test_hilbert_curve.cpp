// Tests for the square Hilbert/Morton curves and tile symmetries.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "hilbert/hilbert_curve.hpp"

namespace memxct::hilbert {
namespace {

class CurveSizes : public ::testing::TestWithParam<idx_t> {};

TEST_P(CurveSizes, HilbertRoundTrip) {
  const idx_t n = GetParam();
  for (idx_t d = 0; d < n * n; ++d) {
    const Cell c = hilbert_d2xy(n, d);
    EXPECT_EQ(hilbert_xy2d(n, c.col, c.row), d);
  }
}

TEST_P(CurveSizes, HilbertVisitsEveryCellOnce) {
  const idx_t n = GetParam();
  std::set<std::pair<idx_t, idx_t>> seen;
  for (idx_t d = 0; d < n * n; ++d) {
    const Cell c = hilbert_d2xy(n, d);
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, n);
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, n);
    seen.insert({c.row, c.col});
  }
  EXPECT_EQ(static_cast<idx_t>(seen.size()), n * n);
}

TEST_P(CurveSizes, HilbertConsecutiveCellsAdjacent) {
  const idx_t n = GetParam();
  Cell prev = hilbert_d2xy(n, 0);
  for (idx_t d = 1; d < n * n; ++d) {
    const Cell cur = hilbert_d2xy(n, d);
    EXPECT_EQ(std::abs(cur.row - prev.row) + std::abs(cur.col - prev.col), 1)
        << "n=" << n << " d=" << d;
    prev = cur;
  }
}

TEST_P(CurveSizes, HilbertEndpointsAreCorners) {
  const idx_t n = GetParam();
  const Cell start = hilbert_d2xy(n, 0);
  const Cell end = hilbert_d2xy(n, n * n - 1);
  EXPECT_EQ(start.row, 0);
  EXPECT_EQ(start.col, 0);
  // The classic curve ends at (x=n-1, y=0).
  EXPECT_EQ(end.row, 0);
  EXPECT_EQ(end.col, n - 1);
}

TEST_P(CurveSizes, MortonRoundTrip) {
  const idx_t n = GetParam();
  std::set<std::pair<idx_t, idx_t>> seen;
  for (idx_t d = 0; d < n * n; ++d) {
    const Cell c = morton_d2xy(n, d);
    EXPECT_EQ(morton_xy2d(n, c.col, c.row), d);
    seen.insert({c.row, c.col});
  }
  EXPECT_EQ(static_cast<idx_t>(seen.size()), n * n);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, CurveSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(MortonCurve, QuadrantStructure) {
  // First 4 indices of a 4x4 Morton curve fill the lower-left 2x2 quadrant.
  std::set<std::pair<idx_t, idx_t>> quadrant;
  for (idx_t d = 0; d < 4; ++d) {
    const Cell c = morton_d2xy(4, d);
    quadrant.insert({c.row, c.col});
  }
  EXPECT_TRUE(quadrant.count({0, 0}));
  EXPECT_TRUE(quadrant.count({0, 1}));
  EXPECT_TRUE(quadrant.count({1, 0}));
  EXPECT_TRUE(quadrant.count({1, 1}));
}

TEST(MortonCurve, HasNonAdjacentJumps) {
  // The Section 3.2.3 objection: Morton makes non-unit jumps.
  const idx_t n = 8;
  int jumps = 0;
  Cell prev = morton_d2xy(n, 0);
  for (idx_t d = 1; d < n * n; ++d) {
    const Cell cur = morton_d2xy(n, d);
    if (std::abs(cur.row - prev.row) + std::abs(cur.col - prev.col) > 1)
      ++jumps;
    prev = cur;
  }
  EXPECT_GT(jumps, 0);
}

TEST(TileTransform, AllEightAreBijections) {
  const idx_t n = 8;
  for (const auto& t : all_tile_transforms()) {
    std::set<std::pair<idx_t, idx_t>> seen;
    for (idx_t r = 0; r < n; ++r)
      for (idx_t c = 0; c < n; ++c) {
        const Cell mapped = t.apply(n, Cell{r, c});
        EXPECT_GE(mapped.row, 0);
        EXPECT_LT(mapped.row, n);
        EXPECT_GE(mapped.col, 0);
        EXPECT_LT(mapped.col, n);
        seen.insert({mapped.row, mapped.col});
      }
    EXPECT_EQ(static_cast<idx_t>(seen.size()), n * n);
  }
}

TEST(TileTransform, IdentityIsFirst) {
  const auto& t = all_tile_transforms()[0];
  const Cell c{3, 5};
  const Cell mapped = t.apply(8, c);
  EXPECT_EQ(mapped.row, c.row);
  EXPECT_EQ(mapped.col, c.col);
}

TEST(TileTransform, TransformsAreDistinct) {
  // Applying all 8 to an asymmetric cell yields 8 distinct images.
  std::set<std::pair<idx_t, idx_t>> images;
  for (const auto& t : all_tile_transforms()) {
    const Cell m = t.apply(8, Cell{1, 3});
    images.insert({m.row, m.col});
  }
  EXPECT_EQ(images.size(), 8u);
}

TEST(TileTransform, PreservesAdjacency) {
  // Symmetries are isometries: adjacent cells stay adjacent.
  const idx_t n = 4;
  for (const auto& t : all_tile_transforms()) {
    const Cell a = t.apply(n, Cell{1, 1});
    const Cell b = t.apply(n, Cell{1, 2});
    EXPECT_EQ(std::abs(a.row - b.row) + std::abs(a.col - b.col), 1);
  }
}

}  // namespace
}  // namespace memxct::hilbert
