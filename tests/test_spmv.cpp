// Tests for the baseline (Listing 2) and library-reference SpMV kernels.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include "sparse/spmv.hpp"
#include "test_util.hpp"

namespace memxct::sparse {
namespace {

struct SpmvCase {
  idx_t rows, cols;
  double density;
  idx_t partsize;
};

class SpmvSweep : public ::testing::TestWithParam<SpmvCase> {};

TEST_P(SpmvSweep, BaselineMatchesReference) {
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 3);
  const auto x = testutil::random_vector(param.cols, 4);
  AlignedVector<real> expected(static_cast<std::size_t>(param.rows));
  AlignedVector<real> actual(static_cast<std::size_t>(param.rows), -1.0f);
  spmv_reference(a, x, expected);
  spmv_csr(a, x, actual, param.partsize);
  EXPECT_LT(testutil::rel_error(actual, expected), 1e-5);
}

TEST_P(SpmvSweep, LibraryMatchesReference) {
  const auto& param = GetParam();
  const CsrMatrix a =
      testutil::random_csr(param.rows, param.cols, param.density, 5);
  const auto x = testutil::random_vector(param.cols, 6);
  AlignedVector<real> expected(static_cast<std::size_t>(param.rows));
  AlignedVector<real> actual(static_cast<std::size_t>(param.rows), -1.0f);
  spmv_reference(a, x, expected);
  spmv_library(a, x, actual);
  EXPECT_LT(testutil::rel_error(actual, expected), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmvSweep,
    ::testing::Values(SpmvCase{1, 1, 1.0, 1}, SpmvCase{16, 16, 0.5, 4},
                      SpmvCase{100, 80, 0.1, 128},
                      SpmvCase{80, 100, 0.1, 7},
                      SpmvCase{257, 129, 0.05, 32},
                      SpmvCase{512, 512, 0.01, 128},
                      SpmvCase{33, 1000, 0.02, 8},
                      SpmvCase{50, 50, 0.0, 16}));

TEST(Spmv, EmptyRowsProduceZero) {
  CsrBuilder b(4, 4);
  const std::vector<std::pair<idx_t, real>> row{{1, 2.0f}};
  b.set_row(2, row);
  const CsrMatrix a = b.assemble();
  const AlignedVector<real> x{1.0f, 1.0f, 1.0f, 1.0f};
  AlignedVector<real> y(4, 99.0f);
  spmv_csr(a, x, y);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(Spmv, RejectsWrongSizes) {
  const CsrMatrix a = testutil::random_csr(4, 5, 0.5, 1);
  AlignedVector<real> x(5), y(4), bad(3);
  EXPECT_THROW(spmv_csr(a, bad, y), InvariantError);
  EXPECT_THROW(spmv_csr(a, x, bad), InvariantError);
  EXPECT_THROW(spmv_library(a, bad, y), InvariantError);
}

TEST(Spmv, WorkAccounting) {
  const CsrMatrix a = testutil::random_csr(20, 20, 0.3, 9);
  const auto work = csr_work(a);
  EXPECT_EQ(work.nnz, a.nnz());
  EXPECT_DOUBLE_EQ(work.flops(), 2.0 * static_cast<double>(a.nnz()));
  EXPECT_DOUBLE_EQ(work.bytes_per_fma(), 8.0);  // 4 B index + 4 B value
  EXPECT_GT(work.gflops(1.0), 0.0);
  EXPECT_EQ(work.gflops(0.0), 0.0);
}

}  // namespace
}  // namespace memxct::sparse
