// Tests for the Siddon ray tracer: geometric invariants of intersection
// lengths.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "geometry/siddon.hpp"

namespace memxct::geometry {
namespace {

double traced_length(const Geometry& g, idx_t angle, idx_t channel) {
  std::vector<std::pair<idx_t, real>> segments;
  trace_ray(g, angle, channel, segments);
  double total = 0.0;
  for (const auto& [pixel, len] : segments) total += len;
  return total;
}

class GeometrySweep
    : public ::testing::TestWithParam<std::pair<idx_t, idx_t>> {};

TEST_P(GeometrySweep, LengthsSumToChord) {
  const auto [angles, channels] = GetParam();
  const Geometry g = make_geometry(angles, channels);
  for (idx_t a = 0; a < angles; ++a)
    for (idx_t c = 0; c < channels; ++c) {
      const double chord = chord_length(g, a, c);
      const double traced = traced_length(g, a, c);
      EXPECT_NEAR(traced, chord, 1e-6 * g.image_size + 1e-9)
          << "angle " << a << " channel " << c;
    }
}

TEST_P(GeometrySweep, SegmentsArePositiveAndInRange) {
  const auto [angles, channels] = GetParam();
  const Geometry g = make_geometry(angles, channels);
  std::vector<std::pair<idx_t, real>> segments;
  const std::int64_t pixels = g.tomogram_extent().size();
  for (idx_t a = 0; a < angles; ++a)
    for (idx_t c = 0; c < channels; ++c) {
      trace_ray(g, a, c, segments);
      for (const auto& [pixel, len] : segments) {
        EXPECT_GE(pixel, 0);
        EXPECT_LT(static_cast<std::int64_t>(pixel), pixels);
        EXPECT_GT(len, 0.0f);
        // No pixel crossing exceeds the pixel diagonal.
        EXPECT_LE(len, static_cast<real>(std::sqrt(2.0) + 1e-5));
      }
    }
}

TEST_P(GeometrySweep, NoDuplicatePixelsWithinRay) {
  const auto [angles, channels] = GetParam();
  const Geometry g = make_geometry(angles, channels);
  std::vector<std::pair<idx_t, real>> segments;
  for (idx_t a = 0; a < angles; ++a)
    for (idx_t c = 0; c < channels; ++c) {
      trace_ray(g, a, c, segments);
      std::vector<idx_t> pixels;
      for (const auto& [pixel, len] : segments) pixels.push_back(pixel);
      std::sort(pixels.begin(), pixels.end());
      EXPECT_TRUE(std::adjacent_find(pixels.begin(), pixels.end()) ==
                  pixels.end());
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeometrySweep,
                         ::testing::Values(std::pair<idx_t, idx_t>{8, 16},
                                           std::pair<idx_t, idx_t>{16, 17},
                                           std::pair<idx_t, idx_t>{45, 32},
                                           std::pair<idx_t, idx_t>{90, 64},
                                           std::pair<idx_t, idx_t>{7, 33}));

TEST(Siddon, AxisAlignedRayCrossesExactlyOneColumn) {
  // Angle 0: direction (1, 0) — ray runs along x through one pixel row.
  const Geometry g = make_geometry(4, 8);  // angles at 0, 45, 90, 135 deg
  std::vector<std::pair<idx_t, real>> segments;
  trace_ray(g, 0, 3, segments);
  ASSERT_EQ(segments.size(), 8u);  // crosses all 8 columns of one row
  for (const auto& [pixel, len] : segments) EXPECT_NEAR(len, 1.0f, 1e-6);
  // All pixels share the same row.
  const idx_t row = segments[0].first / g.image_size;
  for (const auto& [pixel, len] : segments)
    EXPECT_EQ(pixel / g.image_size, row);
}

TEST(Siddon, PerpendicularRayCrossesExactlyOneRow) {
  const Geometry g = make_geometry(4, 8);
  std::vector<std::pair<idx_t, real>> segments;
  trace_ray(g, 2, 5, segments);  // 90 degrees
  ASSERT_EQ(segments.size(), 8u);
  const idx_t col = segments[0].first % g.image_size;
  for (const auto& [pixel, len] : segments)
    EXPECT_EQ(pixel % g.image_size, col);
}

TEST(Siddon, DiagonalCentralRay) {
  // 45-degree ray near the center crosses ~N*sqrt(2) length.
  const Geometry g = make_geometry(4, 16);
  const double len = traced_length(g, 1, 8);
  EXPECT_NEAR(len, 16.0 * std::sqrt(2.0), 1.5);
}

TEST(Siddon, OutsideChannelMissesGrid) {
  // A geometry with detector wider than the image: edge channels miss.
  Geometry g{4, 32, 16};  // 32 channels over a 16x16 image
  g.validate();
  std::vector<std::pair<idx_t, real>> segments;
  trace_ray(g, 1, 0, segments);  // far edge channel, diagonal view
  EXPECT_TRUE(segments.empty());
  EXPECT_DOUBLE_EQ(chord_length(g, 1, 0), 0.0);
}

TEST(Siddon, SinogramMassEqualsImageMassTimesUnitRays) {
  // For angle 0 the projection sums each row exactly once: total traced
  // length equals N*N (every pixel crossed once with length 1).
  const Geometry g = make_geometry(2, 32);
  double total = 0.0;
  for (idx_t c = 0; c < g.num_channels; ++c) total += traced_length(g, 0, c);
  EXPECT_NEAR(total, 32.0 * 32.0, 1e-3);
}

TEST(Siddon, ChannelOffsetsAreCentered) {
  const Geometry g = make_geometry(8, 4);
  EXPECT_DOUBLE_EQ(g.channel_offset(0), -1.5);
  EXPECT_DOUBLE_EQ(g.channel_offset(3), 1.5);
}

TEST(Siddon, ValidateRejectsDegenerate) {
  Geometry g{0, 4, 4};
  EXPECT_THROW(g.validate(), InvariantError);
}

}  // namespace
}  // namespace memxct::geometry
