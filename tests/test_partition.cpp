// Tests for tile-aligned domain decomposition (Section 3.4).
#include <gtest/gtest.h>

#include "dist/partition.hpp"
#include "geometry/projector.hpp"

namespace memxct::dist {
namespace {

TEST(Partition, RangesCoverDomainWithoutOverlap) {
  const hilbert::Ordering ord({45, 32}, hilbert::CurveKind::Hilbert, 8);
  for (const int ranks : {1, 2, 3, 7, 16}) {
    const auto part = partition_by_tiles(ord, ranks);
    EXPECT_EQ(part.num_ranks(), ranks);
    EXPECT_EQ(part.total(), ord.size());
    idx_t covered = 0;
    for (int r = 0; r < ranks; ++r) {
      EXPECT_EQ(part.begin(r), covered);
      covered += part.size(r);
    }
    EXPECT_EQ(covered, ord.size());
  }
}

TEST(Partition, OwnerIsConsistentWithRanges) {
  const hilbert::Ordering ord({64, 64}, hilbert::CurveKind::Hilbert, 16);
  const auto part = partition_by_tiles(ord, 5);
  for (int r = 0; r < part.num_ranks(); ++r) {
    if (part.size(r) == 0) continue;
    EXPECT_EQ(part.owner(part.begin(r)), r);
    EXPECT_EQ(part.owner(part.end(r) - 1), r);
  }
  EXPECT_THROW((void)part.owner(-1), InvariantError);
  EXPECT_THROW((void)part.owner(ord.size()), InvariantError);
}

TEST(Partition, CutsFallOnTileBoundaries) {
  const hilbert::Ordering ord({64, 64}, hilbert::CurveKind::Hilbert, 8);
  const auto part = partition_by_tiles(ord, 7);
  // Every internal cut must coincide with some tile start.
  for (int r = 1; r < part.num_ranks(); ++r) {
    bool on_boundary = false;
    for (idx_t t = 0; t < ord.num_tiles(); ++t)
      if (ord.tile_range(t).first == part.begin(r)) on_boundary = true;
    EXPECT_TRUE(on_boundary) << "cut " << r;
  }
}

TEST(Partition, SubdomainsAreSpatiallyConnectedRegions) {
  // Partition locality: each rank's cells form one compact 2D region whose
  // bounding box area stays within a small factor of its cell count.
  const hilbert::Ordering ord({64, 64}, hilbert::CurveKind::Hilbert, 8);
  const auto part = partition_by_tiles(ord, 8);
  for (int r = 0; r < part.num_ranks(); ++r) {
    idx_t rmin = 64, rmax = 0, cmin = 64, cmax = 0;
    for (idx_t i = part.begin(r); i < part.end(r); ++i) {
      const Cell c = ord.cell(i);
      rmin = std::min(rmin, c.row);
      rmax = std::max(rmax, c.row);
      cmin = std::min(cmin, c.col);
      cmax = std::max(cmax, c.col);
    }
    const double bbox = static_cast<double>(rmax - rmin + 1) *
                        static_cast<double>(cmax - cmin + 1);
    EXPECT_LT(bbox, 4.0 * static_cast<double>(part.size(r))) << "rank " << r;
  }
}

TEST(Partition, ReasonableLoadBalance) {
  const hilbert::Ordering ord({128, 96}, hilbert::CurveKind::Hilbert, 8);
  for (const int ranks : {2, 4, 8, 16}) {
    const auto part = partition_by_tiles(ord, ranks);
    EXPECT_LT(part.imbalance(), 1.5) << ranks << " ranks";
  }
}

TEST(Partition, MoreRanksThanTilesFallsBackToCellCuts) {
  const hilbert::Ordering ord({8, 8}, hilbert::CurveKind::Hilbert, 8);
  ASSERT_EQ(ord.num_tiles(), 1);
  const auto part = partition_by_tiles(ord, 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(part.size(r), 16);
}

TEST(Partition, SingleRankOwnsEverything) {
  const hilbert::Ordering ord({16, 16}, hilbert::CurveKind::Hilbert, 4);
  const auto part = partition_by_tiles(ord, 1);
  EXPECT_EQ(part.size(0), ord.size());
  EXPECT_DOUBLE_EQ(part.imbalance(), 1.0);
}

TEST(Partition, RowMajorOrderingPartitionsByRows) {
  const hilbert::Ordering ord({12, 10}, hilbert::CurveKind::RowMajor);
  const auto part = partition_by_tiles(ord, 3);
  // Row-major tiles are rows; cuts land on row starts.
  for (int r = 1; r < 3; ++r) EXPECT_EQ(part.begin(r) % 10, 0);
}

TEST(Partition, WeightedPartitionBalancesWork) {
  // Projection matrices have nonuniform nnz per tile (edge tiles see
  // shorter chords); weighting by nnz must not be worse than cell-count
  // partitioning, measured in work imbalance.
  const auto g = geometry::make_geometry(24, 32);
  const hilbert::Ordering sino(g.sinogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  const hilbert::Ordering tomo(g.tomogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  const auto a = geometry::build_projection_matrix(g, sino, tomo);
  for (const int ranks : {2, 4, 8}) {
    const auto by_cells = partition_by_tiles(sino, ranks);
    const auto by_nnz =
        partition_by_weights(sino, tile_nnz_weights(sino, a), ranks);
    EXPECT_EQ(by_nnz.total(), sino.size());
    EXPECT_LE(weighted_imbalance(by_nnz, a),
              weighted_imbalance(by_cells, a) * 1.05)
        << ranks << " ranks";
  }
}

TEST(Partition, WeightedPartitionCoversDomain) {
  const hilbert::Ordering ord({32, 32}, hilbert::CurveKind::Hilbert, 8);
  std::vector<double> weights(static_cast<std::size_t>(ord.num_tiles()));
  for (std::size_t t = 0; t < weights.size(); ++t)
    weights[t] = static_cast<double>(t + 1);  // skewed
  const auto part = partition_by_weights(ord, weights, 4);
  idx_t covered = 0;
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(part.begin(r), covered);
    covered += part.size(r);
  }
  EXPECT_EQ(covered, ord.size());
  // Skewed weights: the last rank (heaviest tiles) gets fewer cells.
  EXPECT_LT(part.size(3), part.size(0));
}

TEST(Partition, WeightedHandlesDegenerateWeights) {
  const hilbert::Ordering ord({16, 16}, hilbert::CurveKind::Hilbert, 4);
  const std::vector<double> zeros(static_cast<std::size_t>(ord.num_tiles()),
                                  0.0);
  const auto part = partition_by_weights(ord, zeros, 4);
  EXPECT_EQ(part.total(), ord.size());
  for (int r = 0; r < 4; ++r) EXPECT_GT(part.size(r), 0);
}

TEST(Partition, WeightedRejectsBadInput) {
  const hilbert::Ordering ord({16, 16}, hilbert::CurveKind::Hilbert, 4);
  const std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(partition_by_weights(ord, wrong, 2), InvariantError);
  std::vector<double> negative(static_cast<std::size_t>(ord.num_tiles()),
                               1.0);
  negative[0] = -1.0;
  EXPECT_THROW(partition_by_weights(ord, negative, 2), InvariantError);
}

TEST(Partition, FinerTilesImproveBalance) {
  // The paper: "load balance ... can be improved by finer tile granularity".
  const Extent2D ext{96, 96};
  const hilbert::Ordering coarse(ext, hilbert::CurveKind::Hilbert, 32);
  const hilbert::Ordering fine(ext, hilbert::CurveKind::Hilbert, 8);
  const auto part_coarse = partition_by_tiles(coarse, 5);
  const auto part_fine = partition_by_tiles(fine, 5);
  EXPECT_LE(part_fine.imbalance(), part_coarse.imbalance() + 1e-12);
}

}  // namespace
}  // namespace memxct::dist
