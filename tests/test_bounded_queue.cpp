// common::BoundedQueue: FIFO within a lane, lane-priority drain order,
// capacity bound shared across lanes, close-then-drain semantics, blocking
// push backpressure, high-water tracking, and conservation under concurrent
// producers/consumers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/error.hpp"

namespace {

using memxct::InvariantError;
using memxct::common::BoundedQueue;

TEST(BoundedQueue, FifoWithinOneLane) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0);
}

TEST(BoundedQueue, TryPushRejectsWhenFullAcrossLanes) {
  BoundedQueue<int> q(2, 3);  // capacity bounds the TOTAL across lanes
  EXPECT_TRUE(q.try_push(0, 0));
  EXPECT_TRUE(q.try_push(1, 2));
  EXPECT_FALSE(q.try_push(2, 1)) << "third item must exceed total capacity";
  EXPECT_EQ(q.size(), 2);
  (void)q.pop();
  EXPECT_TRUE(q.try_push(2, 1)) << "room after a pop";
}

TEST(BoundedQueue, PopDrainsLanesInPriorityOrder) {
  BoundedQueue<int> q(8, 3);
  // Enqueue out of priority order: bulk first, interactive last.
  EXPECT_TRUE(q.try_push(20, 2));
  EXPECT_TRUE(q.try_push(21, 2));
  EXPECT_TRUE(q.try_push(10, 1));
  EXPECT_TRUE(q.try_push(0, 0));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) order.push_back(*q.pop());
  EXPECT_EQ(order, (std::vector<int>{0, 10, 20, 21}));
}

TEST(BoundedQueue, CloseDrainsRemainingThenSignalsEnd) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(3)) << "closed queue must reject pushes";
  EXPECT_FALSE(q.push(3)) << "closed queue must reject blocking pushes";
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value()) << "drained + closed ends the stream";
}

TEST(BoundedQueue, BlockingPushWaitsForRoom) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // must block until the consumer makes room
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load()) << "push returned while the queue was full";
  EXPECT_EQ(*q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.pop(), 2);
}

TEST(BoundedQueue, HighWaterTracksPeakAndResets) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.high_water(), 0);
  (void)q.try_push(1);
  (void)q.try_push(2);
  (void)q.try_push(3);
  (void)q.pop();
  (void)q.pop();
  EXPECT_EQ(q.high_water(), 3) << "peak, not current depth";
  q.reset_high_water();
  EXPECT_EQ(q.high_water(), 1) << "reset re-seeds from current depth";
}

TEST(BoundedQueue, ConservesItemsUnderConcurrency) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(8, 2);
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        EXPECT_TRUE(q.push(p * kPerProducer + i, i % 2));
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (const auto v = q.pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c)
    threads[static_cast<std::size_t>(kProducers + c)].join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(),
            static_cast<long long>(total) * (total - 1) / 2);  // 0..total-1
  EXPECT_LE(q.high_water(), 8) << "capacity bound violated under load";
}

TEST(BoundedQueue, PopUpToDrainsGreedilyInLaneOrder) {
  BoundedQueue<int> q(8, 3);
  // Lane 1 first chronologically — drain order must still be lane 0 first.
  EXPECT_TRUE(q.try_push(10, 1));
  EXPECT_TRUE(q.try_push(0, 0));
  EXPECT_TRUE(q.try_push(1, 0));
  EXPECT_TRUE(q.try_push(20, 2));
  const auto wave = q.pop_up_to(8);
  ASSERT_EQ(wave.size(), 4u);
  EXPECT_EQ(wave[0], 0);
  EXPECT_EQ(wave[1], 1);
  EXPECT_EQ(wave[2], 10);
  EXPECT_EQ(wave[3], 20);
  EXPECT_EQ(q.size(), 0);
}

TEST(BoundedQueue, PopUpToRespectsMaxItems) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.try_push(i));
  const auto first = q.pop_up_to(4);
  ASSERT_EQ(first.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(first[static_cast<std::size_t>(i)], i);
  const auto rest = q.pop_up_to(4);  // short final wave
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0], 4);
  EXPECT_EQ(rest[1], 5);
}

TEST(BoundedQueue, PopUpToReturnsEmptyWhenClosedAndDrained) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  const auto wave = q.pop_up_to(4);
  ASSERT_EQ(wave.size(), 1u);  // close() still drains what remains
  EXPECT_EQ(wave[0], 7);
  EXPECT_TRUE(q.pop_up_to(4).empty()) << "closed + drained terminates waves";
  EXPECT_THROW((void)q.pop_up_to(0), InvariantError);
}

TEST(BoundedQueue, PopUpToBlocksUntilFirstItem) {
  BoundedQueue<int> q(4);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    const auto wave = q.pop_up_to(4);
    EXPECT_EQ(wave.size(), 1u);  // woke on the FIRST item; no wait for more
    popped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load()) << "pop_up_to must block on an empty queue";
  EXPECT_TRUE(q.try_push(42));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BoundedQueue, RejectsInvalidConstruction) {
  EXPECT_THROW(BoundedQueue<int>(0), InvariantError);
  EXPECT_THROW(BoundedQueue<int>(1, 0), InvariantError);
  BoundedQueue<int> q(1, 1);
  EXPECT_THROW((void)q.try_push(0, 5), InvariantError);  // lane out of range
}

}  // namespace
