// Tests for the radix-2 FFT substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "common/aligned.hpp"
#include "common/fft.hpp"
#include "common/rng.hpp"

namespace memxct {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Fft, ForwardInverseRoundTrip) {
  Rng rng(5);
  for (const std::size_t n : {2u, 8u, 64u, 1024u}) {
    std::vector<std::complex<double>> data(n), original(n);
    for (auto& v : data) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    original = data;
    fft_inplace(data);
    fft_inplace(data, /*inverse=*/true);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[i].real() / static_cast<double>(n), original[i].real(),
                  1e-9);
      EXPECT_NEAR(data[i].imag() / static_cast<double>(n), original[i].imag(),
                  1e-9);
    }
  }
}

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<std::complex<double>> data(16, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft_inplace(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureToneConcentratesInOneBin) {
  const std::size_t n = 64;
  const int k = 5;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = {std::cos(2.0 * kPi * k * static_cast<double>(i) / n), 0.0};
  fft_inplace(data);
  // cos splits into bins k and n-k with magnitude n/2 each.
  EXPECT_NEAR(std::abs(data[k]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - k]), n / 2.0, 1e-9);
  for (std::size_t i = 1; i < n - 1; ++i)
    if (i != static_cast<std::size_t>(k) && i != n - k) {
      EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9) << "bin " << i;
    }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(7);
  const std::size_t n = 256;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.uniform(-1, 1), 0.0};
    time_energy += std::norm(v);
  }
  fft_inplace(data);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-9);
}

TEST(Fft, RealHelpersRoundTrip) {
  Rng rng(9);
  AlignedVector<real> input(37);
  for (auto& v : input) v = static_cast<real>(rng.uniform(-2, 2));
  auto spectrum = fft_real(input, 64);
  const auto output = ifft_real(spectrum, input.size());
  ASSERT_EQ(output.size(), input.size());
  for (std::size_t i = 0; i < input.size(); ++i)
    EXPECT_NEAR(output[i], input[i], 1e-5);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12);
  EXPECT_THROW(fft_inplace(data), InvariantError);
  AlignedVector<real> v(10);
  EXPECT_THROW(fft_real(v, 9), InvariantError);
}

}  // namespace
}  // namespace memxct
