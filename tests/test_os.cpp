// Tests for the ordered-subsets pipeline: subset row-range views of the
// memoized operator (core/subset.hpp), the OS-SIRT / OS-SART solvers
// (solve/os.hpp), and the streaming-angle ingest path (core/stream.hpp,
// serve/stream.hpp).
//
// The load-bearing contracts pinned here:
//   * a subset view is a true row-range view — concatenated subset applies
//     are bitwise equal to the full apply, for every supported kernel
//     family and schedule;
//   * K = 1 OS-SIRT is bitwise identical to plain SIRT (same fused vector
//     ops, full-range view bitwise equal to the full operator);
//   * the OS recursion state is the iterate alone, so warm-start chaining
//     reproduces a contiguous run bitwise (what bench_os_convergence and
//     checkpoint/restart both rely on);
//   * OS-SIRT reaches the SIRT reference residual in at least 2x fewer
//     full-matrix passes (the PR's acceptance criterion);
//   * streaming previews improve monotonically and a transiently failed
//     chunk, retried, yields a bitwise-identical stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/operator.hpp"
#include "core/reconstructor.hpp"
#include "core/stream.hpp"
#include "core/subset.hpp"
#include "geometry/geometry.hpp"
#include "phantom/phantom.hpp"
#include "resil/fault.hpp"
#include "serve/server.hpp"
#include "serve/stream.hpp"
#include "solve/os.hpp"
#include "solve/sirt.hpp"
#include "solve/vector_ops.hpp"
#include "test_util.hpp"

namespace {

namespace fs = std::filesystem;
using namespace memxct;

void expect_bitwise_eq(std::span<const real> a, std::span<const real> b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(real)), 0)
      << what;
}

double psnr(std::span<const real> test, std::span<const real> ref) {
  double peak = 0.0, mse = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    peak = std::max(peak, static_cast<double>(std::abs(ref[i])));
    const double d = static_cast<double>(test[i]) - ref[i];
    mse += d * d;
  }
  mse /= static_cast<double>(ref.size());
  return 10.0 * std::log10(peak * peak / std::max(mse, 1e-300));
}

/// Phantom + preprocessed operator + ordered measurement vector, the shared
/// setup for every solver-level test below.
struct OsFixture {
  geometry::Geometry geom;
  std::vector<real> image;     ///< Ground-truth phantom.
  AlignedVector<real> sino;    ///< Natural angles-major sinogram.
  std::unique_ptr<core::Reconstructor> recon;
  AlignedVector<real> y;       ///< Ordered-space measurements.
};

OsFixture make_fixture(core::Config config = {}, idx_t size = 32) {
  OsFixture f;
  f.geom = geometry::make_geometry(size * 3 / 2, size);
  f.image = phantom::shepp_logan(size);
  f.sino = phantom::forward_project(f.geom, f.image);
  f.recon = std::make_unique<core::Reconstructor>(f.geom, config);
  const auto& grid = f.recon->sinogram_ordering().to_grid();
  f.y.resize(f.sino.size());
  for (std::size_t i = 0; i < f.y.size(); ++i)
    f.y[i] = f.sino[static_cast<std::size_t>(grid[i])];
  return f;
}

std::vector<solve::OsSubset> as_subsets(
    const std::vector<std::unique_ptr<core::SubsetOperatorView>>& views) {
  std::vector<solve::OsSubset> subs;
  subs.reserve(views.size());
  for (const auto& v : views) subs.push_back({v.get(), v->first_row()});
  return subs;
}

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

// --- Subset view properties -------------------------------------------------

// Every supported kernel family x schedule: the views must behave
// identically (the OS solvers do not know which family they run on).
std::vector<core::Config> view_configs() {
  std::vector<core::Config> configs;
  for (const core::KernelKind kernel :
       {core::KernelKind::Baseline, core::KernelKind::Buffered}) {
    for (const core::ScheduleKind schedule :
         {core::ScheduleKind::Dynamic, core::ScheduleKind::StaticPlan}) {
      core::Config c;
      c.kernel = kernel;
      c.schedule = schedule;
      configs.push_back(c);
    }
  }
  return configs;
}

TEST(SubsetViews, RangesTileRowsExactlyOnce) {
  const auto f = make_fixture();
  const core::MemXCTOperator& op = *f.recon->serial_op();
  for (const int k : {1, 2, 3, 5, 8, 1 << 20}) {
    const auto views = core::make_subset_views(op, k);
    ASSERT_FALSE(views.empty());
    EXPECT_LE(static_cast<int>(views.size()), k);
    idx_t next = 0;
    nnz_t nnz_total = 0;
    for (const auto& v : views) {
      EXPECT_EQ(v->first_row(), next) << "ranges must tile contiguously";
      EXPECT_GT(v->num_rows(), 0);
      EXPECT_EQ(v->num_rows() % op.row_partition_size(), 0);
      EXPECT_EQ(v->num_cols(), op.num_cols());
      next += v->num_rows();
      nnz_total += v->nnz();
    }
    EXPECT_EQ(next, op.num_rows()) << "union must cover every row";
    EXPECT_EQ(nnz_total, op.nnz()) << "every nonzero in exactly one subset";
  }
}

TEST(SubsetViews, ForwardConcatBitwiseEqualsFullApply) {
  for (const core::Config& config : view_configs()) {
    const auto f = make_fixture(config);
    const core::MemXCTOperator& op = *f.recon->serial_op();
    const auto x = testutil::random_vector(op.num_cols(), 11);
    AlignedVector<real> full(static_cast<std::size_t>(op.num_rows()));
    op.apply(x, full);
    for (const int k : {2, 4, 7}) {
      const auto views = core::make_subset_views(op, k);
      AlignedVector<real> concat(full.size(), real{-1});
      for (const auto& v : views)
        v->apply(x, std::span<real>(
                        concat.data() + static_cast<std::size_t>(v->first_row()),
                        static_cast<std::size_t>(v->num_rows())));
      expect_bitwise_eq(concat, full, "subset forward concat vs full apply");
    }
  }
}

TEST(SubsetViews, TransposeBitwiseEqualsZeroPaddedFullTranspose) {
  // With nonnegative weights and nonnegative y, zero-padded rows contribute
  // exact +0.0 terms, which never perturb a nonnegative accumulator — so
  // the filtered subset transpose must be bitwise equal to a full
  // transpose of the padded vector.
  for (const core::Config& config : view_configs()) {
    const auto f = make_fixture(config);
    const core::MemXCTOperator& op = *f.recon->serial_op();
    auto y = testutil::random_vector(op.num_rows(), 13);
    for (auto& v : y) v = std::abs(v);
    const auto views = core::make_subset_views(op, 4);
    AlignedVector<real> padded(y.size());
    AlignedVector<real> xt_full(static_cast<std::size_t>(op.num_cols()));
    AlignedVector<real> xt_view(xt_full.size());
    for (const auto& v : views) {
      const auto first = static_cast<std::size_t>(v->first_row());
      const auto count = static_cast<std::size_t>(v->num_rows());
      std::fill(padded.begin(), padded.end(), real{0});
      std::copy_n(y.begin() + static_cast<std::ptrdiff_t>(first), count,
                  padded.begin() + static_cast<std::ptrdiff_t>(first));
      op.apply_transpose(padded, xt_full);
      v->apply_transpose(std::span<const real>(y.data() + first, count),
                         xt_view);
      expect_bitwise_eq(xt_view, xt_full,
                        "subset transpose vs padded full transpose");
    }
  }
}

TEST(SubsetViews, AdjointConsistencyPerSubset) {
  const auto f = make_fixture();
  const core::MemXCTOperator& op = *f.recon->serial_op();
  const auto x = testutil::random_vector(op.num_cols(), 17);
  const auto views = core::make_subset_views(op, 8);
  for (const auto& v : views) {
    const auto count = static_cast<std::size_t>(v->num_rows());
    AlignedVector<real> ax(count);
    v->apply(x, ax);
    auto y = testutil::random_vector(v->num_rows(),
                                     19 + static_cast<std::uint64_t>(
                                              v->first_row()));
    AlignedVector<real> aty(static_cast<std::size_t>(v->num_cols()));
    v->apply_transpose(y, aty);
    const double lhs = solve::dot(ax, y);
    const double rhs = solve::dot(x, aty);
    const double scale = std::max({std::abs(lhs), std::abs(rhs), 1.0});
    EXPECT_NEAR(lhs / scale, rhs / scale, 1e-5)
        << "<A_s x, y> != <x, A_s^T y> for subset at row " << v->first_row();
  }
}

TEST(SubsetViews, UnsupportedFamiliesThrow) {
  core::Config ell;
  ell.kernel = core::KernelKind::EllBlock;
  const auto f_ell = make_fixture(ell);
  EXPECT_THROW((void)core::make_subset_views(*f_ell.recon->serial_op(), 4),
               InvalidArgument);

  core::Config bf16;
  bf16.kernel = core::KernelKind::Baseline;
  bf16.precision = sparse::ValueStorage::Bf16;
  const auto f_bf16 = make_fixture(bf16);
  EXPECT_THROW((void)core::make_subset_views(*f_bf16.recon->serial_op(), 4),
               InvalidArgument);
}

TEST(SubsetViews, MisalignedRangeThrows) {
  const auto f = make_fixture();
  const core::MemXCTOperator& op = *f.recon->serial_op();
  const idx_t part = op.row_partition_size();
  EXPECT_THROW((void)op.subset_view(1, part), InvalidArgument);
  EXPECT_THROW((void)op.subset_view(0, part / 2), InvalidArgument);
  EXPECT_THROW((void)op.subset_view(part, op.num_rows()), InvalidArgument);
  EXPECT_NO_THROW((void)op.subset_view(part, part));
}

// --- os_solve ---------------------------------------------------------------

TEST(OsSolve, BitReversedOrderIsPermutation) {
  const auto order8 = solve::bit_reversed_order(8);
  EXPECT_EQ(order8, (std::vector<int>{0, 4, 2, 6, 1, 5, 3, 7}));
  for (int count = 1; count <= 17; ++count) {
    auto order = solve::bit_reversed_order(count);
    ASSERT_EQ(static_cast<int>(order.size()), count);
    std::sort(order.begin(), order.end());
    for (int i = 0; i < count; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(OsSolve, SingleSubsetSirtIsBitwiseSirt) {
  // K = 1 degenerates the sweep to exactly the SIRT recursion: same fused
  // vector ops, and the full-range view is bitwise equal to the operator.
  const auto f = make_fixture();
  const core::MemXCTOperator& op = *f.recon->serial_op();
  const auto views = core::make_subset_views(op, 1);
  ASSERT_EQ(views.size(), 1u);
  const auto subs = as_subsets(views);

  solve::OsOptions os_opt;
  os_opt.kind = solve::OsKind::Sirt;
  os_opt.max_sweeps = 8;
  const auto os = solve::os_solve(subs, f.y, os_opt);

  const auto reference = solve::sirt(op, f.y, {.max_iterations = 8});
  expect_bitwise_eq(os.x, reference.x, "K=1 OS-SIRT vs SIRT iterate");
  ASSERT_EQ(os.history.size(), reference.history.size());
  for (std::size_t i = 0; i < os.history.size(); ++i)
    EXPECT_EQ(os.history[i].residual_norm, reference.history[i].residual_norm);
}

TEST(OsSolve, WarmStartChainIsBitwiseContiguousRun) {
  // The OS recursion state is the iterate alone, so chaining max_sweeps=1
  // calls through x0 must reproduce a contiguous run bitwise. The
  // convergence bench and checkpoint restart both stand on this.
  const auto f = make_fixture();
  const auto views = core::make_subset_views(*f.recon->serial_op(), 8);
  const auto subs = as_subsets(views);

  for (const solve::OsKind kind : {solve::OsKind::Sirt, solve::OsKind::Sart}) {
    solve::OsOptions contiguous;
    contiguous.kind = kind;
    contiguous.max_sweeps = 5;
    const auto whole = solve::os_solve(subs, f.y, contiguous);

    AlignedVector<real> x;
    for (int s = 0; s < 5; ++s) {
      solve::OsOptions step;
      step.kind = kind;
      step.max_sweeps = 1;
      step.record_history = false;
      if (!x.empty()) step.x0 = x;
      x = solve::os_solve(subs, f.y, step).x;
    }
    expect_bitwise_eq(x, whole.x, "warm-start chain vs contiguous sweeps");
  }
}

TEST(OsSolve, RerunsAreBitwiseIdentical) {
  // StaticPlan default: two identical runs must agree bit for bit (subset
  // sweep order, plans, and accumulation order are all deterministic).
  const auto f = make_fixture();
  const auto views = core::make_subset_views(*f.recon->serial_op(), 8);
  const auto subs = as_subsets(views);
  solve::OsOptions opt;
  opt.max_sweeps = 6;
  const auto a = solve::os_solve(subs, f.y, opt);
  const auto b = solve::os_solve(subs, f.y, opt);
  expect_bitwise_eq(a.x, b.x, "same-config reruns");
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i)
    EXPECT_EQ(a.history[i].residual_norm, b.history[i].residual_norm);
}

TEST(OsSolve, ReachesSirtResidualInHalfThePasses) {
  // The PR's acceptance criterion: OS-SIRT must reach the residual SIRT
  // needs `ref_sweeps` full passes for in at most half as many sweeps.
  // Measured on the TRUE residual ||y - A.x|| of sweep-end iterates
  // (recomputed with a full apply), not the solver's cheap proxy.
  const auto f = make_fixture();
  const core::MemXCTOperator& op = *f.recon->serial_op();
  const int ref_sweeps = 16;
  const auto sirt_ref = solve::sirt(op, f.y, {.max_iterations = ref_sweeps});
  const double target = sirt_ref.history.back().residual_norm;

  AlignedVector<real> forward(f.y.size());
  const auto true_residual = [&](std::span<const real> x) {
    op.apply(x, forward);
    double r2 = 0.0;
    for (std::size_t i = 0; i < f.y.size(); ++i) {
      const double d = static_cast<double>(f.y[i]) - forward[i];
      r2 += d * d;
    }
    return std::sqrt(r2);
  };

  const auto views = core::make_subset_views(op, 8);
  const auto subs = as_subsets(views);
  for (const solve::OsKind kind : {solve::OsKind::Sirt, solve::OsKind::Sart}) {
    AlignedVector<real> x;
    int sweeps_to_target = -1;
    for (int s = 1; s <= ref_sweeps; ++s) {
      solve::OsOptions opt;
      opt.kind = kind;
      opt.max_sweeps = 1;
      opt.record_history = false;
      if (!x.empty()) opt.x0 = x;
      x = solve::os_solve(subs, f.y, opt).x;
      if (true_residual(x) <= target) {
        sweeps_to_target = s;
        break;
      }
    }
    ASSERT_GT(sweeps_to_target, 0) << "never reached the SIRT residual";
    EXPECT_LE(sweeps_to_target, ref_sweeps / 2)
        << (kind == solve::OsKind::Sirt ? "os-sirt" : "os-sart")
        << " must reach the SIRT reference in >= 2x fewer passes";
  }
}

TEST(OsSolve, CheckpointRestartResumesBitwise) {
  const TempDir dir("memxct_test_os_ckpt");
  const auto f = make_fixture();
  const auto views = core::make_subset_views(*f.recon->serial_op(), 4);
  const auto subs = as_subsets(views);

  solve::OsOptions opt;
  opt.max_sweeps = 8;
  opt.checkpoint.path = (dir.path / "os.ckpt").string();
  opt.checkpoint.interval = 4;
  const auto first = solve::os_solve(subs, f.y, opt);
  EXPECT_EQ(first.iterations, 8);
  EXPECT_EQ(first.resumed_from, 0);

  // Same options again: the snapshot holds sweep 8, so the rerun resumes
  // past the loop and returns the identical iterate without solving.
  const auto resumed = solve::os_solve(subs, f.y, opt);
  EXPECT_EQ(resumed.resumed_from, 8);
  EXPECT_EQ(resumed.iterations, 8);
  expect_bitwise_eq(resumed.x, first.x, "checkpoint resume");

  // A different subset structure must reject the snapshot and start cold
  // (resuming the iterate into a different sweep structure would silently
  // change the meaning of `iteration`).
  const auto views2 = core::make_subset_views(*f.recon->serial_op(), 8);
  const auto subs2 = as_subsets(views2);
  const auto cold = solve::os_solve(subs2, f.y, opt);
  EXPECT_EQ(cold.resumed_from, 0);
  EXPECT_EQ(cold.iterations, 8);
}

TEST(OsSolve, ReconstructorPathRecoversPhantom) {
  for (const core::SolverKind solver :
       {core::SolverKind::OsSirt, core::SolverKind::OsSart}) {
    core::Config config;
    config.solver = solver;
    config.num_subsets = 8;
    config.iterations = 10;
    const auto f = make_fixture(config);
    const auto result = f.recon->reconstruct(f.sino);
    EXPECT_EQ(result.solve.iterations, 10);
    const double db = psnr(result.image, f.image);
    EXPECT_GT(db, 17.0) << core::to_string(solver)
                        << " reconstruction quality regressed";
  }
}

TEST(OsSolve, ExtrasRequireOsSolver) {
  core::Config cgls;  // default solver: CGLS
  const auto f = make_fixture(cgls);
  const std::vector<real> mask(static_cast<std::size_t>(f.geom.num_angles),
                               real{1});
  core::SolveExtras extras;
  extras.angle_mask = mask;
  EXPECT_THROW(
      (void)core::reconstruct_slice(f.recon->op(), f.geom, f.recon->config(),
                                    f.recon->sinogram_ordering(),
                                    f.recon->tomogram_ordering(), f.sino,
                                    nullptr, nullptr, nullptr, &extras),
      InvalidArgument);
  EXPECT_THROW(core::StreamingReconstructor session(*f.recon),
               InvalidArgument);
}

// --- Streaming ingest -------------------------------------------------------

core::Config streaming_config() {
  core::Config config;
  config.solver = core::SolverKind::OsSirt;
  config.num_subsets = 8;
  config.iterations = 10;
  return config;
}

TEST(Streaming, PreviewsImproveMonotonically) {
  const auto f = make_fixture(streaming_config());
  const int chunk = (static_cast<int>(f.geom.num_angles) + 3) / 4;
  const auto previews = core::reconstruct_stream(*f.recon, f.sino, chunk);
  ASSERT_EQ(previews.size(), 4u);
  double last_db = -1e9;
  for (const auto& p : previews) {
    const double db = psnr(p.image, f.image);
    EXPECT_GT(db, last_db) << "preview PSNR must improve with each chunk";
    last_db = db;
  }
  EXPECT_GT(last_db, 17.0) << "final streamed preview quality regressed";
}

TEST(Streaming, FinalPreviewNearBatchReconstruction) {
  // The final chunk solves over all angles, warm-started from the previous
  // preview; it lands near (not bitwise at — different start) the
  // all-at-once reconstruction at the same sweep budget.
  const auto f = make_fixture(streaming_config());
  const auto batch = f.recon->reconstruct(f.sino);
  const int chunk = (static_cast<int>(f.geom.num_angles) + 3) / 4;
  const auto previews = core::reconstruct_stream(*f.recon, f.sino, chunk);
  const auto& final_image = previews.back().image;
  EXPECT_LT(testutil::rel_error(final_image, batch.image), 0.2);
  EXPECT_GT(psnr(final_image, f.image), psnr(batch.image, f.image) - 1.0)
      << "warm-started final must not trail the batch solve by over 1 dB";
}

TEST(Streaming, SingleChunkDegeneratesToMaskedBatch) {
  const auto f = make_fixture(streaming_config());
  const auto previews = core::reconstruct_stream(*f.recon, f.sino, 0);
  ASSERT_EQ(previews.size(), 1u);
  core::StreamingReconstructor session(*f.recon);
  EXPECT_FALSE(session.complete());
  const auto all = session.push_chunk(0, static_cast<int>(f.geom.num_angles),
                                      f.sino);
  EXPECT_TRUE(session.complete());
  expect_bitwise_eq(all.image, previews[0].image,
                    "chunk_angles<=0 vs one full push");
}

TEST(Streaming, RepushAfterRejectedChunkIsBitwiseIdentical) {
  // Determinism contract (core/stream.hpp): a chunk that fails ingest
  // leaves the preview untouched; re-pushing the pristine data yields the
  // same stream bit for bit. The fault is a NaN zinger with the Reject
  // ingest policy — the push throws before any solve runs.
  auto config = streaming_config();
  config.ingest.policy = resil::IngestPolicy::Reject;
  const auto f = make_fixture(config);
  const int num_angles = static_cast<int>(f.geom.num_angles);
  const int chunk = (num_angles + 3) / 4;
  const auto chan = static_cast<std::size_t>(f.geom.num_channels);

  const auto chunk_span = [&](int c) {
    const int first = c * chunk;
    const int count = std::min(chunk, num_angles - first);
    return std::span<const real>(
        f.sino.data() + static_cast<std::size_t>(first) * chan,
        static_cast<std::size_t>(count) * chan);
  };

  core::StreamingReconstructor clean(*f.recon);
  std::vector<std::vector<real>> clean_previews;
  for (int c = 0; c * chunk < num_angles; ++c) {
    const int first = c * chunk;
    const int count = std::min(chunk, num_angles - first);
    clean_previews.push_back(
        clean.push_chunk(first, count, chunk_span(c)).image);
  }

  core::StreamingReconstructor faulty(*f.recon);
  faulty.push_chunk(0, chunk, chunk_span(0));
  // Chunk 1 arrives corrupted: one NaN sample. Reject throws at ingest.
  {
    AlignedVector<real> corrupt(chunk_span(1).begin(), chunk_span(1).end());
    corrupt[corrupt.size() / 2] = std::numeric_limits<real>::quiet_NaN();
    const auto before = faulty.preview();
    EXPECT_THROW((void)faulty.push_chunk(chunk, chunk, corrupt),
                 InvalidArgument);
    expect_bitwise_eq(faulty.preview(), before,
                      "failed chunk must not advance the preview");
  }
  // Retry with the pristine data, then finish the stream.
  std::vector<std::vector<real>> previews{faulty.preview()};
  previews.push_back(faulty.push_chunk(chunk, chunk, chunk_span(1)).image);
  for (int c = 2; c * chunk < num_angles; ++c) {
    const int first = c * chunk;
    const int count = std::min(chunk, num_angles - first);
    previews.push_back(faulty.push_chunk(first, count, chunk_span(c)).image);
  }
  ASSERT_EQ(previews.size(), clean_previews.size());
  for (std::size_t c = 0; c < previews.size(); ++c)
    expect_bitwise_eq(previews[c], clean_previews[c],
                      "retried stream vs clean stream");
}

// --- Serve-layer streaming --------------------------------------------------

struct ServeFixture {
  geometry::Geometry geom = geometry::make_geometry(24, 16);
  AlignedVector<real> sino;
  core::Config config = streaming_config();
};

ServeFixture make_serve_fixture() {
  ServeFixture f;
  f.config.iterations = 8;
  f.config.num_subsets = 4;
  const auto image = phantom::shepp_logan(16);
  f.sino = phantom::forward_project(f.geom, image);
  return f;
}

std::vector<std::vector<real>> run_serve_stream(serve::StreamSession& session,
                                                const ServeFixture& f,
                                                int chunk) {
  std::vector<std::vector<real>> previews;
  const auto chan = static_cast<std::size_t>(f.geom.num_channels);
  for (int first = 0; first < f.geom.num_angles; first += chunk) {
    const int count =
        std::min(chunk, static_cast<int>(f.geom.num_angles) - first);
    const auto r = session.push_chunk(
        first, count,
        std::span<const real>(
            f.sino.data() + static_cast<std::size_t>(first) * chan,
            static_cast<std::size_t>(count) * chan));
    EXPECT_EQ(r.status, serve::RequestStatus::Ok);
    previews.push_back(session.preview());
  }
  EXPECT_TRUE(session.complete());
  return previews;
}

TEST(StreamServe, SessionMatchesCoreStreamBitwise) {
  // The serve session is the core session behind the scheduler: same
  // accumulate-then-solve order, same extras — the previews must agree bit
  // for bit with the inline core path.
  const auto f = make_serve_fixture();
  const int chunk = 6;

  core::Reconstructor recon(f.geom, f.config);
  const auto core_previews = core::reconstruct_stream(recon, f.sino, chunk);

  serve::Server server({.workers = 1});
  serve::StreamSession session(server, f.geom, f.config);
  const auto serve_previews = run_serve_stream(session, f, chunk);
  ASSERT_EQ(serve_previews.size(), core_previews.size());
  for (std::size_t c = 0; c < serve_previews.size(); ++c)
    expect_bitwise_eq(serve_previews[c], core_previews[c].image,
                      "serve stream vs core stream");
}

TEST(StreamServe, FailedChunkLeavesSessionRetryable) {
  // A transient fault with retry disabled fails the request; the preview
  // must not advance, and re-pushing the chunk produces the stream a
  // fault-free session would have produced, bit for bit.
  const auto f = make_serve_fixture();
  const int chunk = 6;

  serve::Server clean_server({.workers = 1});
  serve::StreamSession clean(clean_server, f.geom, f.config);
  const auto clean_previews = run_serve_stream(clean, f, chunk);

  std::atomic<int> submissions{0};
  serve::ServerOptions options;
  options.workers = 1;
  options.retry = {.max_attempts = 1, .backoff_ms = 1.0};
  options.fault_hook = [&submissions](std::int64_t, int) {
    if (++submissions == 3) throw TransientError("injected chunk fault");
  };
  serve::Server server(options);
  serve::StreamSession session(server, f.geom, f.config);

  const auto chan = static_cast<std::size_t>(f.geom.num_channels);
  const auto push = [&](int first) {
    return session.push_chunk(
        first, chunk,
        std::span<const real>(
            f.sino.data() + static_cast<std::size_t>(first) * chan,
            static_cast<std::size_t>(chunk) * chan));
  };
  std::vector<std::vector<real>> previews;
  EXPECT_EQ(push(0).status, serve::RequestStatus::Ok);
  previews.push_back(session.preview());
  EXPECT_EQ(push(chunk).status, serve::RequestStatus::Ok);
  previews.push_back(session.preview());
  // Third submission faults; no retry budget, so the request fails.
  const auto failed = push(2 * chunk);
  EXPECT_EQ(failed.status, serve::RequestStatus::Failed);
  expect_bitwise_eq(session.preview(), previews.back(),
                    "failed chunk must not advance the preview");
  // Retry the same chunk, then finish.
  EXPECT_EQ(push(2 * chunk).status, serve::RequestStatus::Ok);
  previews.push_back(session.preview());
  EXPECT_EQ(push(3 * chunk).status, serve::RequestStatus::Ok);
  previews.push_back(session.preview());

  ASSERT_EQ(previews.size(), clean_previews.size());
  for (std::size_t c = 0; c < previews.size(); ++c)
    expect_bitwise_eq(previews[c], clean_previews[c],
                      "post-retry stream vs clean stream");
}

TEST(StreamServe, SeededFaultStormIsTransparentUnderRetry) {
  // With retry enabled, a seeded transient storm is invisible: every chunk
  // lands Ok (after hidden attempts) and the previews are bitwise equal to
  // the fault-free session's.
  const auto f = make_serve_fixture();
  const int chunk = 6;

  serve::Server clean_server({.workers = 1});
  serve::StreamSession clean(clean_server, f.geom, f.config);
  const auto clean_previews = run_serve_stream(clean, f, chunk);

  const resil::FaultInjector injector(42);
  resil::FaultInjector::WorkerFaultOptions faults;
  faults.transient_probability = 0.5;
  serve::ServerOptions options;
  options.workers = 1;
  options.retry = {.max_attempts = 6, .backoff_ms = 1.0, .seed = 42};
  options.fault_hook = injector.worker_fault_hook(faults);
  serve::Server server(options);
  serve::StreamSession session(server, f.geom, f.config);
  const auto stormy_previews = run_serve_stream(session, f, chunk);

  ASSERT_EQ(stormy_previews.size(), clean_previews.size());
  for (std::size_t c = 0; c < stormy_previews.size(); ++c)
    expect_bitwise_eq(stormy_previews[c], clean_previews[c],
                      "storm stream vs clean stream");
}

TEST(StreamServe, ExtrasValidationAtSubmit) {
  const auto f = make_serve_fixture();
  serve::Server server({.workers = 1});

  // Extras with a non-OS solver are rejected at submit.
  core::Config cgls = f.config;
  cgls.solver = core::SolverKind::CGLS;
  const std::vector<real> mask(static_cast<std::size_t>(f.geom.num_angles),
                               real{1});
  serve::RequestOptions with_mask;
  with_mask.angle_mask = mask;
  EXPECT_THROW((void)server.submit(f.geom, cgls, f.sino, with_mask),
               InvalidArgument);
  EXPECT_THROW(serve::StreamSession(server, f.geom, cgls), InvalidArgument);

  // Wrong-sized extras are rejected before they can corrupt a solve.
  const std::vector<real> short_mask(3, real{1});
  serve::RequestOptions bad_mask;
  bad_mask.angle_mask = short_mask;
  EXPECT_THROW((void)server.submit(f.geom, f.config, f.sino, bad_mask),
               InvalidArgument);
  const std::vector<real> bad_warm(7, real{0});
  serve::RequestOptions warm;
  warm.warm_start_image = bad_warm;
  EXPECT_THROW((void)server.submit(f.geom, f.config, f.sino, warm),
               InvalidArgument);
}

}  // namespace
