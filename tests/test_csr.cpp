// Tests for CSR construction, validation, permutation, and the reference
// multiply.
#include <gtest/gtest.h>

#include "common/error.hpp"

#include <vector>

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace memxct::sparse {
namespace {

CsrMatrix small_matrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  CsrBuilder b(3, 3);
  const std::vector<std::pair<idx_t, real>> r0{{0, 1.0f}, {2, 2.0f}};
  const std::vector<std::pair<idx_t, real>> r2{{1, 4.0f}, {0, 3.0f}};
  b.set_row(0, r0);
  b.set_row(2, r2);
  return b.assemble();
}

TEST(Csr, BuildAndValidate) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.num_rows, 3);
  EXPECT_EQ(m.num_cols, 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_NO_THROW(m.validate());
  // Row 2 was given unsorted; builder must sort.
  EXPECT_EQ(m.ind[2], 0);
  EXPECT_EQ(m.ind[3], 1);
  EXPECT_FLOAT_EQ(m.val[2], 3.0f);
}

TEST(Csr, DuplicateColumnsCoalesce) {
  CsrBuilder b(1, 4);
  const std::vector<std::pair<idx_t, real>> row{
      {2, 1.0f}, {2, 2.5f}, {0, 1.0f}};
  b.set_row(0, row);
  const CsrMatrix m = b.assemble();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.val[1], 3.5f);
}

TEST(Csr, ValidateCatchesCorruption) {
  CsrMatrix m = small_matrix();
  m.ind[0] = 99;  // out of range
  EXPECT_THROW(m.validate(), InvariantError);
}

TEST(Csr, ValidateCatchesUnsortedColumns) {
  CsrMatrix m = small_matrix();
  std::swap(m.ind[0], m.ind[1]);
  EXPECT_THROW(m.validate(), InvariantError);
}

TEST(Csr, MaxRowNnz) {
  EXPECT_EQ(small_matrix().max_row_nnz(), 2);
}

TEST(Csr, RegularBytesAccounting) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.regular_bytes(),
            static_cast<std::int64_t>(4 * (sizeof(idx_t) + sizeof(real)) +
                                      4 * sizeof(nnz_t)));
}

TEST(Csr, ReferenceMultiply) {
  const CsrMatrix m = small_matrix();
  const AlignedVector<real> x{1.0f, 2.0f, 3.0f};
  AlignedVector<real> y(3);
  spmv_reference(m, x, y);
  EXPECT_FLOAT_EQ(y[0], 7.0f);   // 1*1 + 2*3
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 11.0f);  // 3*1 + 4*2
}

TEST(Csr, PermuteRowsAndColumns) {
  const CsrMatrix m = small_matrix();
  // Reverse rows and reverse column numbering.
  const std::vector<idx_t> row_perm{2, 1, 0};
  const std::vector<idx_t> col_map{2, 1, 0};
  const CsrMatrix p = permute(m, row_perm, col_map);
  EXPECT_NO_THROW(p.validate());
  // p(0, :) = m(2, :) with columns mirrored: entries (2-0 -> 2, 3.0),
  // (2-1 -> 1, 4.0) sorted as (1,4),(2,3).
  EXPECT_EQ(p.displ[1] - p.displ[0], 2);
  EXPECT_EQ(p.ind[0], 1);
  EXPECT_FLOAT_EQ(p.val[0], 4.0f);
  EXPECT_EQ(p.ind[1], 2);
  EXPECT_FLOAT_EQ(p.val[1], 3.0f);
}

TEST(Csr, PermuteIsSimilarityForMultiply) {
  // y = A x  must equal  P_row(y') where y' = A' x' with A' the permuted
  // matrix and x' the permuted input.
  Rng rng(99);
  const idx_t rows = 37, cols = 29;
  CsrBuilder b(rows, cols);
  std::vector<std::pair<idx_t, real>> entries;
  for (idx_t r = 0; r < rows; ++r) {
    entries.clear();
    for (idx_t c = 0; c < cols; ++c)
      if (rng.uniform() < 0.2)
        entries.emplace_back(c, static_cast<real>(rng.uniform(-1, 1)));
    b.set_row(r, entries);
  }
  const CsrMatrix a = b.assemble();

  // Random permutations.
  std::vector<idx_t> row_perm(rows), col_map(cols);
  for (idx_t i = 0; i < rows; ++i) row_perm[i] = i;
  for (idx_t i = 0; i < cols; ++i) col_map[i] = i;
  for (idx_t i = rows - 1; i > 0; --i)
    std::swap(row_perm[i], row_perm[rng.uniform_int(i + 1)]);
  std::vector<idx_t> col_perm_to_old(cols);
  for (idx_t i = cols - 1; i > 0; --i)
    std::swap(col_map[i], col_map[rng.uniform_int(i + 1)]);
  for (idx_t old = 0; old < cols; ++old) col_perm_to_old[col_map[old]] = old;

  const CsrMatrix ap = permute(a, row_perm, col_map);
  ap.validate();

  AlignedVector<real> x(cols), xp(cols), y(rows), yp(rows);
  for (idx_t i = 0; i < cols; ++i) x[i] = static_cast<real>(rng.uniform());
  for (idx_t i = 0; i < cols; ++i) xp[i] = x[col_perm_to_old[i]];
  spmv_reference(a, x, y);
  spmv_reference(ap, xp, yp);
  for (idx_t i = 0; i < rows; ++i)
    EXPECT_NEAR(yp[i], y[row_perm[i]], 1e-5) << "row " << i;
}

TEST(Csr, EmptyMatrix) {
  CsrBuilder b(0, 0);
  const CsrMatrix m = b.assemble();
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_NO_THROW(m.validate());
}

TEST(Csr, BuilderRejectsBadIndices) {
  CsrBuilder b(2, 2);
  const std::vector<std::pair<idx_t, real>> row{{5, 1.0f}};
  EXPECT_THROW(b.set_row(0, row), InvariantError);
  EXPECT_THROW(b.set_row(7, {}), InvariantError);
}

}  // namespace
}  // namespace memxct::sparse
