// Tests for projection-matrix construction in ordered index spaces.
#include <gtest/gtest.h>

#include <set>

#include "geometry/projector.hpp"
#include "geometry/siddon.hpp"
#include "sparse/spmv.hpp"
#include "sparse/transpose.hpp"
#include "test_util.hpp"

namespace memxct::geometry {
namespace {

TEST(Projector, DimensionsAndValidity) {
  const Geometry g = make_geometry(12, 16);
  const auto a = build_projection_matrix_natural(g);
  EXPECT_EQ(a.num_rows, 12 * 16);
  EXPECT_EQ(a.num_cols, 16 * 16);
  EXPECT_NO_THROW(a.validate());
  EXPECT_GT(a.nnz(), 0);
}

TEST(Projector, RowSumsEqualChordLengths) {
  const Geometry g = make_geometry(10, 24);
  const auto a = build_projection_matrix_natural(g);
  for (idx_t i = 0; i < a.num_rows; ++i) {
    double sum = 0.0;
    for (nnz_t k = a.displ[i]; k < a.displ[i + 1]; ++k) sum += a.val[k];
    const double chord =
        chord_length(g, i / g.num_channels, i % g.num_channels);
    EXPECT_NEAR(sum, chord, 1e-4) << "ray " << i;
  }
}

TEST(Projector, AdjointIdentityViaScanTranspose) {
  const Geometry g = make_geometry(15, 20);
  const auto a = build_projection_matrix_natural(g);
  const auto at = sparse::transpose(a);
  const auto x = testutil::random_vector(a.num_cols, 5);
  const auto y = testutil::random_vector(a.num_rows, 6);
  AlignedVector<real> ax(static_cast<std::size_t>(a.num_rows));
  AlignedVector<real> aty(static_cast<std::size_t>(a.num_cols));
  sparse::spmv_reference(a, x, ax);
  sparse::spmv_reference(at, y, aty);
  double lhs = 0.0, rhs = 0.0;
  for (idx_t i = 0; i < a.num_rows; ++i)
    lhs += static_cast<double>(ax[i]) * y[i];
  for (idx_t i = 0; i < a.num_cols; ++i)
    rhs += static_cast<double>(x[i]) * aty[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-6);
}

class OrderingKinds
    : public ::testing::TestWithParam<hilbert::CurveKind> {};

TEST_P(OrderingKinds, OrderedMatrixIsPermutationOfNatural) {
  // Forward projection through the ordered matrix must equal the natural
  // result after de-permutation, for any ordering.
  const Geometry g = make_geometry(14, 18);
  const hilbert::Ordering sino(g.sinogram_extent(), GetParam(), 4);
  const hilbert::Ordering tomo(g.tomogram_extent(), GetParam(), 4);
  const auto a_nat = build_projection_matrix_natural(g);
  const auto a_ord = build_projection_matrix(g, sino, tomo);
  ASSERT_EQ(a_nat.nnz(), a_ord.nnz());
  a_ord.validate();

  const auto x_nat = testutil::random_vector(a_nat.num_cols, 9);
  AlignedVector<real> x_ord(x_nat.size());
  for (std::size_t i = 0; i < x_ord.size(); ++i)
    x_ord[i] = x_nat[static_cast<std::size_t>(tomo.to_grid()[i])];

  AlignedVector<real> y_nat(static_cast<std::size_t>(a_nat.num_rows));
  AlignedVector<real> y_ord(static_cast<std::size_t>(a_ord.num_rows));
  sparse::spmv_reference(a_nat, x_nat, y_nat);
  sparse::spmv_reference(a_ord, x_ord, y_ord);
  for (std::size_t i = 0; i < y_ord.size(); ++i)
    EXPECT_NEAR(y_ord[i], y_nat[static_cast<std::size_t>(sino.to_grid()[i])],
                1e-4)
        << "ordered row " << i;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OrderingKinds,
                         ::testing::Values(hilbert::CurveKind::RowMajor,
                                           hilbert::CurveKind::Hilbert,
                                           hilbert::CurveKind::Morton));

TEST(Projector, HilbertOrderingCompactsRowFootprints) {
  // The reason Hilbert ordering enables buffering: the spread of column
  // indices within a row shrinks versus row-major column numbering.
  const Geometry g = make_geometry(24, 32);
  const hilbert::Ordering sino_h(g.sinogram_extent(),
                                 hilbert::CurveKind::Hilbert, 8);
  const hilbert::Ordering tomo_h(g.tomogram_extent(),
                                 hilbert::CurveKind::Hilbert, 8);
  const auto a_nat = build_projection_matrix_natural(g);
  const auto a_h = build_projection_matrix(g, sino_h, tomo_h);

  // Fig 5's metric: distinct 64 B cache lines (16 float indices) a ray's
  // gather stream touches. Hilbert column numbering maps lines to 4x4
  // blocks, so rays at arbitrary angles reuse lines far better than with
  // row-major numbering.
  const auto total_lines = [](const sparse::CsrMatrix& m) {
    std::int64_t total = 0;
    for (idx_t r = 0; r < m.num_rows; ++r) {
      std::set<idx_t> lines;
      for (nnz_t k = m.displ[r]; k < m.displ[r + 1]; ++k)
        lines.insert(m.ind[k] / 16);
      total += static_cast<std::int64_t>(lines.size());
    }
    return total;
  };
  EXPECT_LT(total_lines(a_h), 0.8 * static_cast<double>(total_lines(a_nat)));
}

TEST(Projector, MismatchedOrderingExtentsRejected) {
  const Geometry g = make_geometry(8, 8);
  const hilbert::Ordering wrong(Extent2D{4, 4}, hilbert::CurveKind::Hilbert,
                                4);
  const hilbert::Ordering tomo(g.tomogram_extent(),
                               hilbert::CurveKind::Hilbert, 4);
  EXPECT_THROW(build_projection_matrix(g, wrong, tomo), InvariantError);
}

}  // namespace
}  // namespace memxct::geometry
