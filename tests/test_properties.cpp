// Property-based operator tests over randomized geometries.
//
// Rather than pinning hand-picked values, these tests assert the algebraic
// contracts every MemXCTOperator configuration must satisfy, on a family of
// seeded random geometries (non-square, prime-sized, skinny):
//
//   * adjointness:  <A x, y> == <x, A^T y>   (the memoized transpose really
//     is the transpose — Section 3.3.2's scan transposition);
//   * linearity:    A (a x1 + b x2) == a A x1 + b A x2;
//   * kernel agreement: baseline CSR, block-ELL, multi-stage buffered, and
//     library kernels compute the same product to accumulated-FMA tolerance
//     under both schedules;
//   * determinism: the StaticPlan schedule produces bitwise-identical
//     results for any OpenMP thread count (the PR 1 guarantee the batch
//     engine and checkpoint/restart both build on).
//
// Tolerances are relative: single-precision rows of ~1.4·N terms accumulate
// O(nnz_row · eps) reassociation error, far below 1e-4.
#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/operator.hpp"
#include "geometry/geometry.hpp"
#include "geometry/projector.hpp"
#include "hilbert/ordering.hpp"
#include "solve/cgls.hpp"
#include "solve/vector_ops.hpp"
#include "test_util.hpp"

namespace {

using namespace memxct;

struct GeomCase {
  idx_t angles;
  idx_t channels;
};

// Deliberately awkward shapes: primes, skinny, non-pow2.
const GeomCase kGeomCases[] = {
    {5, 8}, {12, 16}, {7, 13}, {24, 17}, {3, 32},
};

const core::KernelKind kKernels[] = {
    core::KernelKind::Baseline,
    core::KernelKind::EllBlock,
    core::KernelKind::Buffered,
    core::KernelKind::Library,
};

const core::ScheduleKind kSchedules[] = {
    core::ScheduleKind::Dynamic,
    core::ScheduleKind::StaticPlan,
};

sparse::CsrMatrix traced_matrix(const GeomCase& gc) {
  const auto g = geometry::make_geometry(gc.angles, gc.channels);
  const hilbert::Ordering sino(g.sinogram_extent(), hilbert::CurveKind::Hilbert);
  const hilbert::Ordering tomo(g.tomogram_extent(), hilbert::CurveKind::Hilbert);
  return geometry::build_projection_matrix(g, sino, tomo);
}

core::MemXCTOperator make_op(const GeomCase& gc, core::KernelKind kind,
                             core::ScheduleKind schedule) {
  return core::MemXCTOperator(traced_matrix(gc), kind, {}, 64, schedule);
}

constexpr double kRelTol = 1e-4;

double rel_gap(double a, double b) {
  return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 1e-12});
}

TEST(OperatorProperties, AdjointIdentityAcrossKernelsAndSchedules) {
  std::uint64_t seed = 1001;
  for (const auto& gc : kGeomCases) {
    for (const auto kind : kKernels) {
      for (const auto schedule : kSchedules) {
        const auto op = make_op(gc, kind, schedule);
        const auto x = testutil::random_vector(op.num_cols(), seed++);
        const auto y = testutil::random_vector(op.num_rows(), seed++);
        AlignedVector<real> ax(static_cast<std::size_t>(op.num_rows()));
        AlignedVector<real> aty(static_cast<std::size_t>(op.num_cols()));
        op.apply(x, ax);
        op.apply_transpose(y, aty);
        const double lhs = solve::dot(ax, y);
        const double rhs = solve::dot(x, aty);
        EXPECT_LT(rel_gap(lhs, rhs), kRelTol)
            << "adjoint gap for " << core::to_string(kind) << "/"
            << core::to_string(schedule) << " at " << gc.angles << "x"
            << gc.channels;
      }
    }
  }
}

TEST(OperatorProperties, LinearityAcrossKernelsAndSchedules) {
  std::uint64_t seed = 2002;
  for (const auto& gc : kGeomCases) {
    for (const auto kind : kKernels) {
      for (const auto schedule : kSchedules) {
        const auto op = make_op(gc, kind, schedule);
        const auto n = static_cast<std::size_t>(op.num_cols());
        const auto m = static_cast<std::size_t>(op.num_rows());
        const auto x1 = testutil::random_vector(op.num_cols(), seed++);
        const auto x2 = testutil::random_vector(op.num_cols(), seed++);
        const real a = real{1.5}, b = real{-0.75};
        AlignedVector<real> combo(n);
        for (std::size_t i = 0; i < n; ++i) combo[i] = a * x1[i] + b * x2[i];
        AlignedVector<real> ax1(m), ax2(m), a_combo(m);
        op.apply(x1, ax1);
        op.apply(x2, ax2);
        op.apply(combo, a_combo);
        // Gap relative to the vector's scale, not element-wise: rows where
        // a·(Ax1) and b·(Ax2) nearly cancel have tiny expected values whose
        // element-relative error is dominated by that cancellation, not by
        // any operator nonlinearity.
        double scale = 1e-12, worst_abs = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double expect =
              a * static_cast<double>(ax1[i]) + b * static_cast<double>(ax2[i]);
          scale = std::max(scale, std::abs(expect));
          worst_abs = std::max(
              worst_abs, std::abs(static_cast<double>(a_combo[i]) - expect));
        }
        EXPECT_LT(worst_abs / scale, kRelTol)
            << "linearity gap for " << core::to_string(kind) << "/"
            << core::to_string(schedule) << " at " << gc.angles << "x"
            << gc.channels;
      }
    }
  }
}

TEST(OperatorProperties, KernelsAgreeWithinFmaTolerance) {
  std::uint64_t seed = 3003;
  for (const auto& gc : kGeomCases) {
    // Baseline static-plan is the reference product.
    const auto ref_op =
        make_op(gc, core::KernelKind::Baseline, core::ScheduleKind::StaticPlan);
    const auto x = testutil::random_vector(ref_op.num_cols(), seed++);
    const auto y = testutil::random_vector(ref_op.num_rows(), seed++);
    AlignedVector<real> ref_fwd(static_cast<std::size_t>(ref_op.num_rows()));
    AlignedVector<real> ref_bwd(static_cast<std::size_t>(ref_op.num_cols()));
    ref_op.apply(x, ref_fwd);
    ref_op.apply_transpose(y, ref_bwd);

    for (const auto kind : kKernels) {
      for (const auto schedule : kSchedules) {
        const auto op = make_op(gc, kind, schedule);
        AlignedVector<real> fwd(ref_fwd.size()), bwd(ref_bwd.size());
        op.apply(x, fwd);
        op.apply_transpose(y, bwd);
        EXPECT_LT(testutil::rel_error(fwd, ref_fwd), kRelTol)
            << "forward mismatch for " << core::to_string(kind) << "/"
            << core::to_string(schedule) << " at " << gc.angles << "x"
            << gc.channels;
        EXPECT_LT(testutil::rel_error(bwd, ref_bwd), kRelTol)
            << "transpose mismatch for " << core::to_string(kind) << "/"
            << core::to_string(schedule) << " at " << gc.angles << "x"
            << gc.channels;
      }
    }
  }
}

// StaticPlan applies must be bitwise-identical under any OpenMP thread
// count: the plan fixes the partition → slot map at construction and slots
// execute in the same order regardless of how many threads pick them up.
TEST(OperatorProperties, StaticPlanApplyIsBitwiseThreadCountInvariant) {
  const int saved = omp_get_max_threads();
  std::uint64_t seed = 4004;
  for (const auto& gc : kGeomCases) {
    for (const auto kind :
         {core::KernelKind::Baseline, core::KernelKind::EllBlock,
          core::KernelKind::Buffered}) {
      const auto op = make_op(gc, kind, core::ScheduleKind::StaticPlan);
      const auto x = testutil::random_vector(op.num_cols(), seed++);
      const auto m = static_cast<std::size_t>(op.num_rows());
      AlignedVector<real> ref(m), got(m);
      omp_set_num_threads(1);
      op.apply(x, ref);
      for (const int threads : {2, saved}) {
        omp_set_num_threads(threads);
        op.apply(x, got);
        EXPECT_EQ(0, std::memcmp(ref.data(), got.data(), m * sizeof(real)))
            << core::to_string(kind) << " apply differs at " << threads
            << " threads (" << gc.angles << "x" << gc.channels << ")";
      }
      omp_set_num_threads(saved);
    }
  }
  omp_set_num_threads(saved);
}

// The same property extended through a full solver run: CGLS on the planned
// operator is an alternation of planned applies and deterministic chunked
// reductions, so the final iterate is bitwise thread-count-invariant too.
TEST(OperatorProperties, CglsSolveIsBitwiseThreadCountInvariant) {
  const int saved = omp_get_max_threads();
  const GeomCase gc{12, 16};
  const auto op =
      make_op(gc, core::KernelKind::Buffered, core::ScheduleKind::StaticPlan);
  const auto y = testutil::random_vector(op.num_rows(), 5005);
  solve::CglsOptions opt;
  opt.max_iterations = 8;

  omp_set_num_threads(1);
  const auto ref = solve::cgls(op, y, opt);
  for (const int threads : {2, saved}) {
    omp_set_num_threads(threads);
    const auto got = solve::cgls(op, y, opt);
    ASSERT_EQ(ref.x.size(), got.x.size());
    EXPECT_EQ(0, std::memcmp(ref.x.data(), got.x.data(),
                             ref.x.size() * sizeof(real)))
        << "CGLS iterate differs at " << threads << " threads";
  }
  omp_set_num_threads(saved);
}

// Views share storage but own workspaces; a view's products must be
// bitwise-identical to its parent's.
TEST(OperatorProperties, ViewMatchesParentBitwise) {
  std::uint64_t seed = 6006;
  for (const auto kind : kKernels) {
    const GeomCase gc{7, 13};
    const auto op = make_op(gc, kind, core::ScheduleKind::StaticPlan);
    const auto view = op.make_view();
    EXPECT_EQ(op.num_rows(), view->num_rows());
    EXPECT_EQ(op.num_cols(), view->num_cols());
    EXPECT_EQ(op.nnz(), view->nnz());
    const auto x = testutil::random_vector(op.num_cols(), seed++);
    const auto m = static_cast<std::size_t>(op.num_rows());
    AlignedVector<real> a(m), b(m);
    op.apply(x, a);
    view->apply(x, b);
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), m * sizeof(real)))
        << "view mismatch for " << core::to_string(kind);
  }
}

}  // namespace
