// Tests for the multi-slice volume pipeline (Table 5's "all slices"
// workflow) with shared preprocessing and warm-started CG.
#include <gtest/gtest.h>

#include "core/volume.hpp"
#include "phantom/datasets.hpp"
#include "phantom/phantom.hpp"
#include "test_util.hpp"

namespace memxct::core {
namespace {

/// A small synthetic 3D stack: shale slices whose seed drifts slowly, so
/// adjacent slices are similar but not identical (like a real volume).
AlignedVector<real> slice_sinogram(const geometry::Geometry& g, int slice) {
  // Blend two phantoms to make neighbouring slices strongly correlated.
  const auto base = phantom::shale_phantom(g.image_size, 100);
  const auto drift =
      phantom::shale_phantom(g.image_size, 200 + static_cast<unsigned>(slice) / 4);
  std::vector<real> image(base.size());
  const real w = static_cast<real>(0.1 + 0.02 * slice);
  for (std::size_t i = 0; i < image.size(); ++i)
    image[i] = (1.0f - w) * base[i] + w * drift[i];
  return phantom::forward_project(g, image);
}

TEST(Volume, ReconstructsAllSlicesWithOnePreprocessing) {
  const auto spec = phantom::dataset("RDS1").scaled_by(32);
  const auto g = spec.geometry();
  Config config;
  config.iterations = 8;
  const VolumeReconstructor volume(g, config);
  const auto result = volume.reconstruct(
      4, [&](int s) { return slice_sinogram(g, s); });
  ASSERT_EQ(result.slices.size(), 4u);
  ASSERT_EQ(result.stats.size(), 4u);
  for (const auto& slice : result.slices)
    EXPECT_EQ(static_cast<std::int64_t>(slice.size()),
              g.tomogram_extent().size());
  for (const auto& s : result.stats) {
    EXPECT_EQ(s.iterations, 8);
    EXPECT_GT(s.seconds, 0.0);
    EXPECT_GT(s.residual_norm, 0.0);
  }
  EXPECT_GT(result.preprocess_seconds, 0.0);
  // Slices differ (it is a volume, not a repeated slice).
  EXPECT_NE(result.slices[0], result.slices[3]);
}

TEST(Volume, WarmStartMatchesColdQuality) {
  const auto spec = phantom::dataset("RDS1").scaled_by(32);
  const auto g = spec.geometry();
  Config config;
  config.iterations = 12;
  const VolumeReconstructor volume(g, config);
  const auto source = [&](int s) { return slice_sinogram(g, s); };
  const auto cold = volume.reconstruct(3, source, {.warm_start = false});
  const auto warm = volume.reconstruct(3, source, {.warm_start = true});
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_LT(testutil::rel_error(warm.slices[s], cold.slices[s]), 0.05)
        << "slice " << s;
}

TEST(Volume, WarmStartLowersResidualAtFixedIterations) {
  // Same iteration budget: warm-started later slices must end at a lower
  // (or equal) residual than cold-started ones.
  const auto spec = phantom::dataset("RDS1").scaled_by(32);
  const auto g = spec.geometry();
  Config config;
  config.iterations = 4;  // deliberately tight budget
  const VolumeReconstructor volume(g, config);
  const auto source = [&](int s) { return slice_sinogram(g, s); };
  const auto cold = volume.reconstruct(3, source, {.warm_start = false});
  const auto warm = volume.reconstruct(3, source, {.warm_start = true});
  // Slice 0 is identical (nothing to warm from); later slices benefit.
  for (std::size_t s = 1; s < 3; ++s)
    EXPECT_LT(warm.stats[s].residual_norm,
              cold.stats[s].residual_norm * 1.01)
        << "slice " << s;
}

TEST(Volume, ZRegularizationCouplesAdjacentSlices) {
  // With strong z_lambda, consecutive reconstructed slices must be closer
  // to each other than without coupling (the prior pulls each slice toward
  // its neighbour).
  const auto spec = phantom::dataset("RDS1").scaled_by(32);
  const auto g = spec.geometry();
  Config config;
  config.iterations = 10;
  const VolumeReconstructor volume(g, config);
  const auto source = [&](int s) { return slice_sinogram(g, s); };
  const auto plain = volume.reconstruct(3, source, {});
  const auto coupled =
      volume.reconstruct(3, source, {.warm_start = false, .z_lambda = 50.0});
  const auto slice_gap = [](const VolumeResult& r) {
    double total = 0.0;
    for (std::size_t s = 1; s < r.slices.size(); ++s)
      total += phantom::rmse(r.slices[s], r.slices[s - 1]);
    return total;
  };
  EXPECT_LT(slice_gap(coupled), slice_gap(plain));
}

TEST(Volume, MildZRegularizationPreservesQuality) {
  const auto spec = phantom::dataset("RDS1").scaled_by(32);
  const auto g = spec.geometry();
  Config config;
  config.iterations = 10;
  const VolumeReconstructor volume(g, config);
  const auto source = [&](int s) { return slice_sinogram(g, s); };
  const auto plain = volume.reconstruct(2, source, {});
  const auto mild =
      volume.reconstruct(2, source, {.warm_start = false, .z_lambda = 0.5});
  for (std::size_t s = 0; s < 2; ++s)
    EXPECT_LT(testutil::rel_error(mild.slices[s], plain.slices[s]), 0.1)
        << "slice " << s;
}

TEST(Volume, ZeroSlicesIsValid) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const VolumeReconstructor volume(spec.geometry(), []{ Config c; c.iterations = 2; return c; }());
  const auto result =
      volume.reconstruct(0, [&](int) { return AlignedVector<real>{}; });
  EXPECT_TRUE(result.slices.empty());
}

TEST(Volume, RejectsWrongSliceSize) {
  const auto spec = phantom::dataset("ADS1").scaled_by(16);
  const VolumeReconstructor volume(spec.geometry(), []{ Config c; c.iterations = 2; return c; }());
  EXPECT_THROW(
      volume.reconstruct(1, [&](int) { return AlignedVector<real>(7); }),
      InvariantError);
}

}  // namespace
}  // namespace memxct::core
