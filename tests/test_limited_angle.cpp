// Tests for limited-angle and detector-wider-than-image geometries.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/reconstructor.hpp"
#include "geometry/projector.hpp"
#include "geometry/siddon.hpp"
#include "phantom/analytic.hpp"
#include "phantom/phantom.hpp"
#include "solve/fbp.hpp"

namespace memxct::geometry {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(LimitedAngle, AnglesStayWithinSpan) {
  const auto g = make_limited_angle_geometry(10, 16, kPi / 2);
  for (idx_t i = 0; i < g.num_angles; ++i) {
    EXPECT_GE(g.angle(i), 0.0);
    EXPECT_LT(g.angle(i), kPi / 2);
  }
  EXPECT_DOUBLE_EQ(g.angle(0), 0.0);
  EXPECT_NEAR(g.angle(5), kPi / 4, 1e-12);
}

TEST(LimitedAngle, FullSpanIsDefault) {
  const auto g = make_geometry(8, 8);
  EXPECT_DOUBLE_EQ(g.angle_span, kPi);
}

TEST(LimitedAngle, ValidateRejectsBadSpan) {
  Geometry g{4, 8, 8, 0.0};
  EXPECT_THROW(g.validate(), InvariantError);
  g.angle_span = 4.0;  // > pi
  EXPECT_THROW(g.validate(), InvariantError);
  g.angle_span = kPi / 3;
  EXPECT_NO_THROW(g.validate());
}

TEST(LimitedAngle, ProjectionMatrixBuildsAndTracesConsistently) {
  const auto g = make_limited_angle_geometry(12, 16, kPi * 2 / 3);
  const auto a = build_projection_matrix_natural(g);
  a.validate();
  // Row sums still equal chord lengths at the restricted angles.
  for (idx_t i = 0; i < a.num_rows; ++i) {
    double sum = 0.0;
    for (nnz_t k = a.displ[i]; k < a.displ[i + 1]; ++k) sum += a.val[k];
    EXPECT_NEAR(sum,
                chord_length(g, i / g.num_channels, i % g.num_channels),
                1e-4);
  }
}

TEST(LimitedAngle, ReconstructionDegradesGracefullyWithCg) {
  // Limited-angle data is the constrained regime iterative methods handle
  // better than FBP (paper Section 1 / reference [3]).
  const idx_t n = 64;
  const auto ellipses = phantom::shepp_logan_ellipses(n);
  const auto truth = phantom::render_analytic(n, ellipses);

  const auto rmse_for = [&](double span, bool use_cg) {
    const auto g = make_limited_angle_geometry(96, n, span);
    const auto sino = phantom::analytic_sinogram(g, ellipses);
    if (use_cg) {
      core::Config config;
      config.iterations = 30;
      const core::Reconstructor recon(g, config);
      return phantom::rmse(recon.reconstruct(sino).image, truth);
    }
    return phantom::rmse(solve::fbp_reconstruct(g, sino), truth);
  };
  const double cg_limited = rmse_for(kPi * 2 / 3, true);
  const double fbp_limited = rmse_for(kPi * 2 / 3, false);
  const double cg_full = rmse_for(kPi, true);
  EXPECT_GT(cg_limited, cg_full);      // missing angles do hurt
  EXPECT_LT(cg_limited, fbp_limited);  // but CG hurts less than FBP
}

TEST(WideDetector, ChannelsBeyondImageAreHandled) {
  // A detector 2x wider than the image: outer channels miss the grid and
  // produce empty matrix rows; reconstruction still works.
  Geometry g{16, 32, 16};
  g.validate();
  const auto a = build_projection_matrix_natural(g);
  a.validate();
  idx_t empty_rows = 0;
  for (idx_t r = 0; r < a.num_rows; ++r)
    if (a.displ[r + 1] == a.displ[r]) ++empty_rows;
  EXPECT_GT(empty_rows, 0);

  const auto img = phantom::shepp_logan(16);
  const auto sino = phantom::forward_project(g, img);
  core::Config config;
  config.iterations = 15;
  const core::Reconstructor recon(g, config);
  const auto result = recon.reconstruct(sino);
  const std::vector<real> zeros(img.size(), 0.0f);
  EXPECT_LT(phantom::rmse(result.image, img),
            0.5 * phantom::rmse(zeros, img));
}

}  // namespace
}  // namespace memxct::geometry
