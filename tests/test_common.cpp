// Tests for common utilities: grid math, RNG determinism, aligned storage,
// invariant checking.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/grid.hpp"
#include "common/rng.hpp"

namespace memxct {
namespace {

TEST(Grid, RowMajorRoundTrip) {
  const Extent2D ext{7, 13};
  for (idx_t r = 0; r < ext.rows; ++r)
    for (idx_t c = 0; c < ext.cols; ++c) {
      const auto i = row_major_index(ext, r, c);
      const Cell cell = row_major_cell(ext, i);
      EXPECT_EQ(cell.row, r);
      EXPECT_EQ(cell.col, c);
    }
}

TEST(Grid, Contains) {
  const Extent2D ext{4, 5};
  EXPECT_TRUE(ext.contains(0, 0));
  EXPECT_TRUE(ext.contains(3, 4));
  EXPECT_FALSE(ext.contains(4, 0));
  EXPECT_FALSE(ext.contains(0, 5));
  EXPECT_FALSE(ext.contains(-1, 0));
}

TEST(Grid, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(1000), 1024);
  EXPECT_EQ(next_pow2(1024), 1024);
}

TEST(Grid, IsPow2AndLog2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(log2_pow2(1), 0);
  EXPECT_EQ(log2_pow2(256), 8);
}

TEST(Grid, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
}

TEST(Error, CheckThrowsWithContext) {
  EXPECT_THROW(MEMXCT_CHECK(false), InvariantError);
  try {
    MEMXCT_CHECK_MSG(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
  }
  EXPECT_NO_THROW(MEMXCT_CHECK(true));
}

TEST(Aligned, VectorIsCacheLineAligned) {
  AlignedVector<float> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
  AlignedVector<std::uint16_t> w(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kCacheLineBytes, 0u);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  for (const double mean : {0.5, 5.0, 50.0, 500.0}) {
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.1) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(17);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

}  // namespace
}  // namespace memxct
