// Tests for common utilities: grid math, RNG determinism, aligned storage,
// invariant checking.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/grid.hpp"
#include "common/interleave.hpp"
#include "common/rng.hpp"

namespace memxct {
namespace {

TEST(Grid, RowMajorRoundTrip) {
  const Extent2D ext{7, 13};
  for (idx_t r = 0; r < ext.rows; ++r)
    for (idx_t c = 0; c < ext.cols; ++c) {
      const auto i = row_major_index(ext, r, c);
      const Cell cell = row_major_cell(ext, i);
      EXPECT_EQ(cell.row, r);
      EXPECT_EQ(cell.col, c);
    }
}

TEST(Grid, Contains) {
  const Extent2D ext{4, 5};
  EXPECT_TRUE(ext.contains(0, 0));
  EXPECT_TRUE(ext.contains(3, 4));
  EXPECT_FALSE(ext.contains(4, 0));
  EXPECT_FALSE(ext.contains(0, 5));
  EXPECT_FALSE(ext.contains(-1, 0));
}

TEST(Grid, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(1000), 1024);
  EXPECT_EQ(next_pow2(1024), 1024);
}

TEST(Grid, IsPow2AndLog2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(log2_pow2(1), 0);
  EXPECT_EQ(log2_pow2(256), 8);
}

TEST(Grid, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
}

TEST(Error, CheckThrowsWithContext) {
  EXPECT_THROW(MEMXCT_CHECK(false), InvariantError);
  try {
    MEMXCT_CHECK_MSG(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
  }
  EXPECT_NO_THROW(MEMXCT_CHECK(true));
}

TEST(Aligned, VectorIsCacheLineAligned) {
  AlignedVector<float> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
  AlignedVector<std::uint16_t> w(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kCacheLineBytes, 0u);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(13);
  for (const double mean : {0.5, 5.0, 50.0, 500.0}) {
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.1) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(17);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Interleave, SliceRoundTrip) {
  // Odd n and odd k — no even-division shortcuts.
  const idx_t n = 19;
  for (const idx_t k : {1, 3, 5}) {
    std::vector<AlignedVector<real>> slices;
    for (idx_t s = 0; s < k; ++s) {
      AlignedVector<real> v(static_cast<std::size_t>(n));
      for (idx_t i = 0; i < n; ++i)
        v[static_cast<std::size_t>(i)] =
            static_cast<real>(100 * s + i);
      slices.push_back(std::move(v));
    }
    AlignedVector<real> packed(static_cast<std::size_t>(n * k),
                               -1.0f);
    for (idx_t s = 0; s < k; ++s)
      common::interleave_slice(slices[static_cast<std::size_t>(s)], k, s,
                               packed);
    // Element i of slice s must land at i*k + s.
    for (idx_t i = 0; i < n; ++i)
      for (idx_t s = 0; s < k; ++s)
        EXPECT_EQ(packed[static_cast<std::size_t>(i * k + s)],
                  static_cast<real>(100 * s + i));
    AlignedVector<real> out(static_cast<std::size_t>(n));
    for (idx_t s = 0; s < k; ++s) {
      common::deinterleave_slice(packed, k, s, out);
      for (idx_t i = 0; i < n; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)],
                  slices[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Interleave, WidthOneIsIdentityLayout) {
  const auto n = std::size_t{13};
  AlignedVector<real> src(n), dst(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<real>(i) * 0.5f;
  common::interleave_slice(src, 1, 0, dst);
  EXPECT_EQ(0, std::memcmp(src.data(), dst.data(), n * sizeof(real)));
  AlignedVector<real> back(n, -1.0f);
  common::deinterleave_slice(dst, 1, 0, back);
  EXPECT_EQ(0, std::memcmp(src.data(), back.data(), n * sizeof(real)));
}

TEST(Interleave, AlignedResizeForSimd) {
  constexpr std::size_t per_line = kCacheLineBytes / sizeof(real);
  AlignedVector<real> v;
  const std::size_t padded = common::aligned_resize_for_simd(v, 7, 3);
  EXPECT_EQ(padded, v.size());
  // Holds n*k elements, rounded up to whole cache lines so vector
  // loads/stores on the last interleaved group stay in bounds.
  EXPECT_GE(v.size(), 21u);
  EXPECT_EQ(v.size() % per_line, 0u);
  for (const real x : v) EXPECT_EQ(x, 0.0f);
  // Shrinking keeps the rounding invariant.
  common::aligned_resize_for_simd(v, 2, 1);
  EXPECT_GE(v.size(), 2u);
  EXPECT_EQ(v.size() % per_line, 0u);
  EXPECT_THROW(common::aligned_resize_for_simd(v, 4, 0), InvariantError);
}

}  // namespace
}  // namespace memxct
