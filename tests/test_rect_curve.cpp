// Tests for the generalized-Hilbert curve over arbitrary rectangles
// (the first ordering level of Section 3.2).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "hilbert/rect_curve.hpp"

namespace memxct::hilbert {
namespace {

using Shape = std::pair<idx_t, idx_t>;

class RectShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(RectShapes, CoversEveryCellExactlyOnce) {
  const auto [w, h] = GetParam();
  const auto cells = rect_hilbert_order(w, h);
  ASSERT_EQ(static_cast<idx_t>(cells.size()), w * h);
  std::set<std::pair<idx_t, idx_t>> seen;
  for (const Cell c : cells) {
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, h);
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, w);
    seen.insert({c.row, c.col});
  }
  EXPECT_EQ(static_cast<idx_t>(seen.size()), w * h);
}

TEST_P(RectShapes, StepsAreUnitOrRareDiagonal) {
  // The pseudo-Hilbert construction is connected up to occasional diagonal
  // steps forced by odd-sized sub-blocks (never a farther jump), and those
  // diagonals are rare.
  const auto [w, h] = GetParam();
  const auto cells = rect_hilbert_order(w, h);
  std::size_t non_unit = 0;
  for (std::size_t i = 1; i < cells.size(); ++i) {
    const idx_t dr = std::abs(cells[i].row - cells[i - 1].row);
    const idx_t dc = std::abs(cells[i].col - cells[i - 1].col);
    EXPECT_LE(dr, 1) << "w=" << w << " h=" << h << " i=" << i;
    EXPECT_LE(dc, 1) << "w=" << w << " h=" << h << " i=" << i;
    if (dr + dc != 1) ++non_unit;
  }
  EXPECT_LE(non_unit, 1 + cells.size() / 100)
      << "w=" << w << " h=" << h;
}

INSTANTIATE_TEST_SUITE_P(
    MixedShapes, RectShapes,
    ::testing::Values(Shape{1, 1}, Shape{1, 7}, Shape{7, 1}, Shape{2, 2},
                      Shape{3, 3}, Shape{4, 4}, Shape{5, 3}, Shape{3, 5},
                      Shape{13, 11},  // the paper's Fig 4 example
                      Shape{16, 16}, Shape{17, 5}, Shape{6, 31},
                      Shape{40, 25}, Shape{64, 64}, Shape{100, 1},
                      Shape{33, 32}));

// Degenerate and prime-dimension edge cases: 1×N / N×1 strips (both
// orientations, prime lengths), prime×prime rectangles, and shapes that sit
// just off a power of two — the recursion's odd-split paths.
INSTANTIATE_TEST_SUITE_P(
    EdgeShapes, RectShapes,
    ::testing::Values(Shape{1, 2}, Shape{2, 1}, Shape{1, 97}, Shape{97, 1},
                      Shape{1, 131}, Shape{131, 1}, Shape{2, 127},
                      Shape{127, 2}, Shape{29, 23}, Shape{23, 29},
                      Shape{37, 37}, Shape{61, 2}, Shape{2, 61},
                      Shape{127, 129}, Shape{63, 65}));

TEST(RectCurve, StartsAtOrigin) {
  const auto cells = rect_hilbert_order(8, 8);
  EXPECT_EQ(cells.front().row, 0);
  EXPECT_EQ(cells.front().col, 0);
}

TEST(RectCurve, DegenerateSingleCell) {
  const auto cells = rect_hilbert_order(1, 1);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].row, 0);
  EXPECT_EQ(cells[0].col, 0);
}

TEST(RectCurve, RejectsInvalidShape) {
  EXPECT_THROW(rect_hilbert_order(0, 4), InvariantError);
  EXPECT_THROW(rect_hilbert_order(4, 0), InvariantError);
}

TEST(RectCurve, LocalityBeatsRowMajorScan) {
  // Windowed locality: cells within a window of W consecutive curve
  // positions should span a smaller bounding box than a row-major scan's
  // (which spans the full width).
  const idx_t w = 32, h = 32, window = 64;
  const auto cells = rect_hilbert_order(w, h);
  double max_extent = 0.0;
  for (std::size_t i = 0; i + window <= cells.size(); i += window) {
    idx_t rmin = h, rmax = 0, cmin = w, cmax = 0;
    for (std::size_t j = i; j < i + window; ++j) {
      rmin = std::min(rmin, cells[j].row);
      rmax = std::max(rmax, cells[j].row);
      cmin = std::min(cmin, cells[j].col);
      cmax = std::max(cmax, cells[j].col);
    }
    max_extent = std::max(
        max_extent, static_cast<double>((rmax - rmin) + (cmax - cmin)));
  }
  // 64 cells on a Hilbert-style curve stay within roughly a 8-16 wide
  // region; a row-major scan of 64 cells spans 32 columns + 2 rows = 33+.
  EXPECT_LT(max_extent, 30.0);
}

}  // namespace
}  // namespace memxct::hilbert
