// Multi-RHS (SpMM) kernels and the lockstep block solver: the bitwise
// parity contract. Lane s of any block operation must equal the single-RHS
// operation on slice s bit for bit — for every kernel family, schedule,
// thread count, and width tested.
#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <vector>

#include "batch/batch.hpp"
#include "common/interleave.hpp"
#include "core/reconstructor.hpp"
#include "phantom/phantom.hpp"
#include "solve/block.hpp"
#include "sparse/buffered.hpp"
#include "sparse/ell.hpp"
#include "sparse/plan.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmv.hpp"
#include "test_util.hpp"

namespace {

using namespace memxct;

template <class F>
void with_threads(int n, F&& fn) {
  const int before = omp_get_max_threads();
  omp_set_num_threads(n);
  fn();
  omp_set_num_threads(before);
}

using SingleFn = std::function<void(std::span<const real>, std::span<real>)>;
using BlockFn =
    std::function<void(idx_t, std::span<const real>, std::span<real>)>;

/// Runs the single kernel on k independent lanes, the block kernel on their
/// interleaving, and requires bitwise equality per lane.
void expect_lane_parity(const SingleFn& single, const BlockFn& block,
                        idx_t n_in, idx_t n_out, idx_t k,
                        std::uint64_t seed) {
  std::vector<AlignedVector<real>> xs, refs;
  for (idx_t lane = 0; lane < k; ++lane) {
    xs.push_back(testutil::random_vector(n_in, seed + static_cast<std::uint64_t>(lane)));
    AlignedVector<real> y(static_cast<std::size_t>(n_out), 0.0f);
    single(xs.back(), y);
    refs.push_back(std::move(y));
  }

  AlignedVector<real> xi(static_cast<std::size_t>(n_in) * static_cast<std::size_t>(k));
  AlignedVector<real> yi(static_cast<std::size_t>(n_out) * static_cast<std::size_t>(k));
  for (idx_t lane = 0; lane < k; ++lane)
    common::interleave_slice(xs[static_cast<std::size_t>(lane)], k, lane, xi);
  block(k, xi, yi);

  AlignedVector<real> out(static_cast<std::size_t>(n_out));
  for (idx_t lane = 0; lane < k; ++lane) {
    common::deinterleave_slice(yi, k, lane, out);
    EXPECT_EQ(0, std::memcmp(out.data(),
                             refs[static_cast<std::size_t>(lane)].data(),
                             static_cast<std::size_t>(n_out) * sizeof(real)))
        << "lane " << lane << " of " << k << " differs";
  }
}

/// All kernel families built from one CSR matrix, single and block forms.
struct KernelSet {
  std::string name;
  SingleFn single;
  BlockFn block;
};

constexpr idx_t kTestMaxWidth = 8;

std::vector<KernelSet> make_kernels(const sparse::CsrMatrix& a,
                                    const sparse::BufferedMatrix& buf,
                                    const sparse::EllBlockMatrix& ell,
                                    const sparse::ApplyPlan& csr_plan,
                                    const sparse::ApplyPlan& buf_plan,
                                    const sparse::ApplyPlan& ell_plan,
                                    sparse::Workspace& buf_ws,
                                    sparse::Workspace& ell_ws) {
  std::vector<KernelSet> out;
  out.push_back({"csr",
                 [&](auto x, auto y) { sparse::spmv_csr(a, x, y); },
                 [&](idx_t k, auto x, auto y) { sparse::spmm_csr(a, k, x, y); }});
  out.push_back({"library",
                 [&](auto x, auto y) { sparse::spmv_library(a, x, y); },
                 [&](idx_t k, auto x, auto y) { sparse::spmm_library(a, k, x, y); }});
  out.push_back({"ell",
                 [&](auto x, auto y) { sparse::spmv_ell(ell, x, y); },
                 [&](idx_t k, auto x, auto y) { sparse::spmm_ell(ell, k, x, y); }});
  out.push_back({"buffered",
                 [&](auto x, auto y) { sparse::spmv_buffered(buf, x, y); },
                 [&](idx_t k, auto x, auto y) { sparse::spmm_buffered(buf, k, x, y); }});
  out.push_back({"csr-planned",
                 [&](auto x, auto y) {
                   sparse::spmv_csr_planned(a, sparse::kCsrPartsize, csr_plan, x, y);
                 },
                 [&](idx_t k, auto x, auto y) {
                   sparse::spmm_csr_planned(a, sparse::kCsrPartsize, csr_plan, k, x, y);
                 }});
  out.push_back({"ell-planned",
                 [&](auto x, auto y) {
                   sparse::spmv_ell_planned(ell, ell_plan, ell_ws, x, y);
                 },
                 [&](idx_t k, auto x, auto y) {
                   sparse::spmm_ell_planned(ell, ell_plan, ell_ws, k, x, y);
                 }});
  out.push_back({"buffered-planned",
                 [&](auto x, auto y) {
                   sparse::spmv_buffered_planned(buf, buf_plan, buf_ws, x, y);
                 },
                 [&](idx_t k, auto x, auto y) {
                   sparse::spmm_buffered_planned(buf, buf_plan, buf_ws, k, x, y);
                 }});
  return out;
}

void run_kernel_parity(const sparse::CsrMatrix& a, std::uint64_t seed) {
  const int slots = 4;  // fixed plan slots, independent of thread count
  const auto buf = sparse::build_buffered(a, {64, 512});
  const auto ell = sparse::to_ell_block(a, 32);
  const auto csr_plan = sparse::ApplyPlan::build(
      sparse::partition_nnz(a, sparse::kCsrPartsize), slots);
  const auto buf_plan =
      sparse::ApplyPlan::build(sparse::partition_nnz(buf), slots);
  const auto ell_plan =
      sparse::ApplyPlan::build(sparse::partition_nnz(ell), slots);
  sparse::Workspace buf_ws(slots, buf.config.buffsize * kTestMaxWidth,
                           buf.config.partsize * kTestMaxWidth);
  sparse::Workspace ell_ws(slots, 0, ell.block_rows * kTestMaxWidth);

  const auto kernels = make_kernels(a, buf, ell, csr_plan, buf_plan,
                                    ell_plan, buf_ws, ell_ws);
  for (const auto& kernel : kernels)
    for (const idx_t k : {1, 3, 4, 8})
      for (const int threads : {1, 2, 3})
        with_threads(threads, [&] {
          SCOPED_TRACE(kernel.name + " k=" + std::to_string(k) +
                       " threads=" + std::to_string(threads));
          expect_lane_parity(kernel.single, kernel.block, a.num_cols,
                             a.num_rows, k, seed);
        });
}

TEST(Spmm, LaneParityRandomMatrix) {
  // Awkward (non-round, non-multiple-of-anything) shape.
  run_kernel_parity(testutil::random_csr(173, 131, 0.07, 42), 1001);
}

TEST(Spmm, LaneParityBandedMatrix) {
  run_kernel_parity(testutil::banded_csr(257, 191, 9, 7), 2002);
}

TEST(Spmm, RejectsOversizedWidth) {
  const auto a = testutil::random_csr(16, 12, 0.3, 5);
  AlignedVector<real> x(12 * (sparse::kMaxBlockWidth + 1));
  AlignedVector<real> y(16 * (sparse::kMaxBlockWidth + 1));
  EXPECT_THROW(sparse::spmm_csr(a, sparse::kMaxBlockWidth + 1, x, y),
               InvariantError);
}

// ---------------------------------------------------------------------------
// Operator level: MemXCTOperator::apply_block / apply_transpose_block.

class SpmmOperatorTest
    : public ::testing::TestWithParam<
          std::tuple<core::KernelKind, core::ScheduleKind>> {};

TEST_P(SpmmOperatorTest, BlockApplyMatchesPerSlice) {
  const auto [kernel, schedule] = GetParam();
  core::Config config;
  config.kernel = kernel;
  config.schedule = schedule;
  config.buffer = {64, 512};
  config.ell_block_rows = 32;
  const auto g = geometry::make_geometry(36, 24);
  const core::Reconstructor recon(g, config);
  const core::MemXCTOperator& op = *recon.serial_op();

  const auto n = static_cast<std::size_t>(op.num_cols());
  const auto m = static_cast<std::size_t>(op.num_rows());
  const idx_t k = 4;

  // Forward: per-slice slabs through the virtual block path.
  AlignedVector<real> x_slab(n * static_cast<std::size_t>(k));
  AlignedVector<real> y_slab(m * static_cast<std::size_t>(k));
  for (idx_t s = 0; s < k; ++s) {
    const auto xs = testutil::random_vector(static_cast<idx_t>(n),
                                            77 + static_cast<std::uint64_t>(s));
    std::copy(xs.begin(), xs.end(),
              x_slab.begin() + static_cast<std::ptrdiff_t>(
                                   static_cast<std::size_t>(s) * n));
  }
  op.apply_block(x_slab, y_slab, k);

  AlignedVector<real> y_ref(m);
  for (idx_t s = 0; s < k; ++s) {
    const std::span<const real> xs(
        x_slab.data() + static_cast<std::size_t>(s) * n, n);
    op.apply(xs, y_ref);
    EXPECT_EQ(0, std::memcmp(y_slab.data() + static_cast<std::size_t>(s) * m,
                             y_ref.data(), m * sizeof(real)))
        << "forward lane " << s;
  }

  // Transpose: same contract the other way.
  AlignedVector<real> yt_slab(m * static_cast<std::size_t>(k));
  AlignedVector<real> xt_slab(n * static_cast<std::size_t>(k));
  for (idx_t s = 0; s < k; ++s) {
    const auto ys = testutil::random_vector(static_cast<idx_t>(m),
                                            177 + static_cast<std::uint64_t>(s));
    std::copy(ys.begin(), ys.end(),
              yt_slab.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(s) * m));
  }
  op.apply_transpose_block(yt_slab, xt_slab, k);
  AlignedVector<real> x_ref(n);
  for (idx_t s = 0; s < k; ++s) {
    const std::span<const real> ys(
        yt_slab.data() + static_cast<std::size_t>(s) * m, m);
    op.apply_transpose(ys, x_ref);
    EXPECT_EQ(0, std::memcmp(xt_slab.data() + static_cast<std::size_t>(s) * n,
                             x_ref.data(), n * sizeof(real)))
        << "transpose lane " << s;
  }

  // Adjoint identity per lane: <A x, y> == <x, A^T y> (float-accumulated
  // by independent code paths, so tolerance not bitwise).
  for (idx_t s = 0; s < k; ++s) {
    double axy = 0.0, xaty = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      axy += static_cast<double>(y_slab[static_cast<std::size_t>(s) * m + i]) *
             yt_slab[static_cast<std::size_t>(s) * m + i];
    for (std::size_t i = 0; i < n; ++i)
      xaty += static_cast<double>(x_slab[static_cast<std::size_t>(s) * n + i]) *
              xt_slab[static_cast<std::size_t>(s) * n + i];
    EXPECT_NEAR(axy, xaty, 1e-3 * (std::abs(axy) + 1.0)) << "lane " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAndSchedules, SpmmOperatorTest,
    ::testing::Combine(::testing::Values(core::KernelKind::Baseline,
                                         core::KernelKind::EllBlock,
                                         core::KernelKind::Buffered,
                                         core::KernelKind::Library),
                       ::testing::Values(core::ScheduleKind::Dynamic,
                                         core::ScheduleKind::StaticPlan)));

// ---------------------------------------------------------------------------
// Solver level: lockstep block CGLS vs independent per-slice solves.

TEST(SpmmSolver, BlockSolveMatchesPerSliceBitwise) {
  core::Config config;
  config.iterations = 40;
  // Lanes must converge at DIFFERENT iterations — the masking path (freeze
  // one lane, keep iterating the others) must not perturb the still-live
  // lanes. Lane 0 is an all-zero sinogram: its residual is zero so CGLS
  // freezes it immediately (gamma == 0), the most aggressive mask case.
  config.early_stop = true;
  const auto g = geometry::make_geometry(48, 32);
  const core::Reconstructor recon(g, config);

  const auto image = phantom::shepp_logan(32);
  const auto clean = phantom::forward_project(g, image);
  const idx_t k = 3;
  std::vector<AlignedVector<real>> sinos;
  sinos.emplace_back(clean.size(), 0.0f);
  for (idx_t s = 1; s < k; ++s) {
    AlignedVector<real> sino = clean;
    Rng rng(100 + static_cast<std::uint64_t>(s));
    // Different noise per lane => different convergence trajectories.
    phantom::add_poisson_noise(sino, 200.0 * s * s, rng);
    sinos.push_back(std::move(sino));
  }

  std::vector<core::ReconstructionResult> refs;
  for (idx_t s = 0; s < k; ++s)
    refs.push_back(core::reconstruct_slice(
        recon.op(), g, config, recon.sinogram_ordering(),
        recon.tomogram_ordering(), sinos[static_cast<std::size_t>(s)]));

  std::vector<std::span<const real>> views;
  for (const auto& sino : sinos) views.emplace_back(sino);
  const auto block = core::reconstruct_block(
      recon.op(), g, config, recon.sinogram_ordering(),
      recon.tomogram_ordering(), views);

  ASSERT_EQ(block.size(), static_cast<std::size_t>(k));
  bool mixed_iterations = false;
  for (idx_t s = 0; s < k; ++s) {
    const auto& ref = refs[static_cast<std::size_t>(s)];
    const auto& got = block[static_cast<std::size_t>(s)];
    SCOPED_TRACE("lane " + std::to_string(s));
    EXPECT_EQ(ref.solve.iterations, got.solve.iterations);
    EXPECT_EQ(ref.solve.diverged, got.solve.diverged);
    EXPECT_EQ(ref.solve.cancelled, got.solve.cancelled);
    ASSERT_EQ(ref.image.size(), got.image.size());
    EXPECT_EQ(0, std::memcmp(ref.image.data(), got.image.data(),
                             ref.image.size() * sizeof(real)));
    ASSERT_EQ(ref.solve.history.size(), got.solve.history.size());
    for (std::size_t i = 0; i < ref.solve.history.size(); ++i) {
      EXPECT_EQ(ref.solve.history[i].residual_norm,
                got.solve.history[i].residual_norm);
      EXPECT_EQ(ref.solve.history[i].solution_norm,
                got.solve.history[i].solution_norm);
    }
    if (got.solve.iterations != block[0].solve.iterations)
      mixed_iterations = true;
  }
  // The scenario is constructed to exercise masking; if every lane stopped
  // at the same iteration the test would silently lose its point.
  EXPECT_TRUE(mixed_iterations)
      << "expected lanes to converge at different iterations";
}

TEST(SpmmSolver, BlockSolverRequiresCgls) {
  core::Config config;
  config.solver = core::SolverKind::SIRT;
  const auto g = geometry::make_geometry(24, 16);
  const core::Reconstructor recon(g, config);
  const auto sino = phantom::forward_project(g, phantom::shepp_logan(16));
  const std::vector<std::span<const real>> views{std::span<const real>(sino)};
  EXPECT_THROW(core::reconstruct_block(recon.op(), g, config,
                                       recon.sinogram_ordering(),
                                       recon.tomogram_ordering(), views),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Batch level: block_width waves vs width-1 workers.

TEST(SpmmBatch, BlockWidthMatchesWidthOneBitwise) {
  core::Config config;
  config.iterations = 8;
  config.early_stop = true;
  const auto g = geometry::make_geometry(36, 24);
  const core::Reconstructor recon(g, config);

  const auto clean = phantom::forward_project(g, phantom::shepp_logan(24));
  const int slices = 5;  // not a multiple of the width: final wave is short
  std::vector<AlignedVector<real>> sinos;
  for (int s = 0; s < slices; ++s) {
    AlignedVector<real> sino = clean;
    Rng rng(300 + static_cast<std::uint64_t>(s));
    phantom::add_poisson_noise(sino, 1500.0 * (1 + s), rng);
    sinos.push_back(std::move(sino));
  }

  const auto run = [&](int width) {
    batch::BatchOptions opt;
    opt.workers = 1;
    opt.block_width = width;
    batch::BatchReconstructor engine(recon, opt);
    for (const auto& sino : sinos) engine.submit(sino);
    return engine.wait_all();
  };
  const auto ref = run(1);
  const auto got = run(4);

  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t s = 0; s < ref.size(); ++s) {
    SCOPED_TRACE("slice " + std::to_string(s));
    EXPECT_EQ(ref[s].slice, got[s].slice);
    EXPECT_EQ(ref[s].status, got[s].status);
    EXPECT_EQ(ref[s].solve.iterations, got[s].solve.iterations);
    ASSERT_EQ(ref[s].image.size(), got[s].image.size());
    EXPECT_EQ(0, std::memcmp(ref[s].image.data(), got[s].image.data(),
                             ref[s].image.size() * sizeof(real)));
  }
}

TEST(SpmmBatch, BlockWaveIsolatesRejectedSlices) {
  core::Config config;
  config.iterations = 4;
  config.ingest.policy = resil::IngestPolicy::Reject;
  const auto g = geometry::make_geometry(24, 16);
  const core::Reconstructor recon(g, config);
  const auto clean = phantom::forward_project(g, phantom::shepp_logan(16));

  batch::BatchOptions opt;
  opt.workers = 1;
  opt.block_width = 4;
  batch::BatchReconstructor engine(recon, opt);
  AlignedVector<real> poisoned = clean;
  poisoned[3] = std::numeric_limits<real>::quiet_NaN();
  engine.submit(clean);
  engine.submit(poisoned);  // rejected inside the wave
  engine.submit(clean);
  const auto results = engine.wait_all();

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, batch::SliceStatus::Ok);
  EXPECT_EQ(results[1].status, batch::SliceStatus::IngestRejected);
  EXPECT_EQ(results[2].status, batch::SliceStatus::Ok);
  // The survivors' images match a clean width-1 run (the reject did not
  // shift or poison their lanes).
  const auto ref = core::reconstruct_slice(
      recon.op(), g, config, recon.sinogram_ordering(),
      recon.tomogram_ordering(), clean);
  EXPECT_EQ(0, std::memcmp(results[0].image.data(), ref.image.data(),
                           ref.image.size() * sizeof(real)));
  EXPECT_EQ(0, std::memcmp(results[2].image.data(), ref.image.data(),
                           ref.image.size() * sizeof(real)));
  EXPECT_EQ(engine.report().block_width, 4);
  EXPECT_GE(engine.report().waves, 1);
  EXPECT_GT(engine.report().matrix_bytes_per_slice, 0.0);
}

TEST(SpmmBatch, RejectsNonCglsBlockWidth) {
  core::Config config;
  config.solver = core::SolverKind::SIRT;
  const auto g = geometry::make_geometry(24, 16);
  const core::Reconstructor recon(g, config);
  batch::BatchOptions opt;
  opt.block_width = 2;
  EXPECT_THROW(batch::BatchReconstructor(recon, opt), InvalidArgument);
}

}  // namespace
